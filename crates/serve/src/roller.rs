//! Incremental window rolling.
//!
//! The offline pipeline batches a whole [`DynamicGraph`] into windows of K
//! snapshots up front; a server sees the graph one event at a time. The
//! [`WindowRoller`] maintains the forming snapshot of one stream: events
//! accumulate as pending [`GraphUpdate`]s, a [`EdgeEvent::Tick`] seals
//! them into the next snapshot (through the validating
//! [`try_apply_updates`] path), and every K sealed snapshots roll into a
//! [`RolledWindow`] — a K-snapshot [`DynamicGraph`] the planner and
//! engine consume exactly as they would an offline window. Because ticks
//! replay through the same apply/diff machinery the offline batcher uses,
//! rolled windows are bit-identical to the offline batching of the same
//! stream.

use std::sync::Arc;

use tagnn_graph::delta::{try_apply_updates, GraphUpdate};
use tagnn_graph::incremental::{MaintainerState, MaintainerStats, PlanMaintainer};
use tagnn_graph::{DynamicGraph, GraphError, Snapshot, WindowPlan};

use crate::event::{empty_base, EdgeEvent};
use crate::shard::{LanesState, SealStats, ShardLanes, ShardRouter};

/// One window of K sealed snapshots, ready to plan and execute.
#[derive(Debug, Clone, PartialEq)]
pub struct RolledWindow {
    /// 0-based index of this window within its stream.
    pub seq: u64,
    /// The window's snapshots as a standalone dynamic graph.
    pub graph: DynamicGraph,
    /// Incrementally sealed plan for this window, when the roller's
    /// [`PlanMaintainer`] could vouch for it ([`None`] on the scratch /
    /// fallback path, or when incremental planning is disabled).
    pub plan: Option<Arc<WindowPlan>>,
}

/// Checkpointable image of a [`WindowRoller`]: every field that decides
/// the stream's future windows. Restoring this state into
/// [`WindowRoller::from_state`] and continuing the stream produces
/// windows bit-identical to the uninterrupted roller — including the
/// incrementally maintained plans, whose forming classifier travels in
/// `maintainer`.
#[derive(Debug, Clone, PartialEq)]
pub struct RollerState {
    /// Window size K.
    pub window: usize,
    /// Feature dimensionality of the stream.
    pub feature_dim: usize,
    /// The current (last sealed, or empty base) snapshot.
    pub current: Snapshot,
    /// Mutations buffered since the last tick.
    pub pending: Vec<GraphUpdate>,
    /// Snapshots sealed but not yet rolled into a window.
    pub sealed: Vec<Snapshot>,
    /// Next window sequence number.
    pub seq: u64,
    /// Total ticks the stream has seen.
    pub ticks: u64,
    /// Plan-maintainer state (`None` when incremental planning is off).
    pub maintainer: Option<MaintainerState>,
}

/// Checkpointable image of a [`ShardedRoller`]: the inner roller's state
/// plus the buffered admission lanes and cumulative seal totals. The
/// router is rebuilt from config at recovery, not persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRollerState {
    /// The wrapped [`WindowRoller`]'s state.
    pub inner: RollerState,
    /// Buffered admission lanes and routing counters.
    pub lanes: LanesState,
    /// Cumulative seal statistics.
    pub seal_totals: SealStats,
}

/// Rolls the event stream of one logical stream into windows of K
/// snapshots.
#[derive(Debug)]
pub struct WindowRoller {
    window: usize,
    feature_dim: usize,
    current: Snapshot,
    pending: Vec<GraphUpdate>,
    sealed: Vec<Snapshot>,
    seq: u64,
    ticks: u64,
    maintainer: Option<PlanMaintainer>,
}

impl WindowRoller {
    /// A roller over `universe` vertices with `feature_dim`-dimensional
    /// features, emitting windows of `window` snapshots. The stream
    /// starts from the canonical [`empty_base`].
    ///
    /// # Panics
    /// Panics if `window == 0` or `universe == 0`.
    pub fn new(universe: usize, feature_dim: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(universe > 0, "universe must be positive");
        Self {
            window,
            feature_dim,
            current: empty_base(universe, feature_dim),
            pending: Vec::new(),
            sealed: Vec::new(),
            seq: 0,
            ticks: 0,
            maintainer: None,
        }
    }

    /// Enables incremental plan maintenance: every tick is absorbed by a
    /// [`PlanMaintainer`] as it arrives (off the seal critical path), and
    /// rolled windows carry a ready, bit-identical [`WindowPlan`] in
    /// [`RolledWindow::plan`]. Attach before the first tick — a maintainer
    /// attached mid-window falls back to scratch for that window.
    pub fn with_incremental_planning(mut self) -> Self {
        self.maintainer = Some(PlanMaintainer::new());
        self
    }

    /// Cumulative plan-maintainer counters (`None` when incremental
    /// planning is disabled).
    pub fn maintainer_stats(&self) -> Option<MaintainerStats> {
        self.maintainer.as_ref().map(PlanMaintainer::stats)
    }

    /// Window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Vertex universe size of the stream.
    pub fn universe(&self) -> usize {
        self.current.num_vertices()
    }

    /// Feature dimensionality of the stream.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Snapshots sealed but not yet rolled into a window.
    pub fn sealed_len(&self) -> usize {
        self.sealed.len()
    }

    /// Events applied since the last tick (pending mutations).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total ticks (sealed snapshots) this stream has seen.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Feeds one event. Mutation events are validated immediately and
    /// buffered; a [`EdgeEvent::Tick`] seals the pending mutations into
    /// the next snapshot and — every K-th tick — returns the rolled
    /// window. A rejected event leaves the roller untouched, so one bad
    /// client event never corrupts the stream.
    pub fn apply(&mut self, event: &EdgeEvent) -> Result<Option<RolledWindow>, GraphError> {
        event.validate(self.current.num_vertices(), self.feature_dim)?;
        match event.as_update() {
            Some(update) => {
                self.pending.push(update);
                Ok(None)
            }
            None => self.tick(),
        }
    }

    fn tick(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        let updates = std::mem::take(&mut self.pending);
        let next = try_apply_updates(&self.current, &updates)?;
        self.current = next.clone();
        self.sealed.push(next);
        self.ticks += 1;
        // Plan maintenance happens here, per tick, off the seal critical
        // path: by window boundary the plan work is already absorbed.
        if let Some(m) = self.maintainer.as_mut() {
            m.absorb(&self.sealed, &updates);
        }
        if self.sealed.len() == self.window {
            self.roll()
        } else {
            Ok(None)
        }
    }

    /// Rolls the sealed snapshots into a window, sealing the maintained
    /// plan alongside (a rolled window always plans as window index 0).
    fn roll(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        let plan = self.maintainer.as_mut().and_then(|m| {
            let refs: Vec<&Snapshot> = self.sealed.iter().collect();
            m.seal(&refs, 0).map(Arc::new)
        });
        let graph = DynamicGraph::try_new(std::mem::take(&mut self.sealed))?;
        let seq = self.seq;
        self.seq += 1;
        Ok(Some(RolledWindow { seq, graph, plan }))
    }

    /// Seals nothing, but flushes sealed-but-unrolled snapshots as a
    /// short tail window (`None` when there are none). Used at stream end
    /// so no sealed snapshot is ever lost.
    pub fn flush(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        if self.sealed.is_empty() {
            return Ok(None);
        }
        self.roll()
    }

    /// Clones this roller's full stream position into a checkpointable
    /// [`RollerState`].
    pub fn export_state(&self) -> RollerState {
        RollerState {
            window: self.window,
            feature_dim: self.feature_dim,
            current: self.current.clone(),
            pending: self.pending.clone(),
            sealed: self.sealed.clone(),
            seq: self.seq,
            ticks: self.ticks,
            maintainer: self.maintainer.as_ref().map(PlanMaintainer::export_state),
        }
    }

    /// Rebuilds a roller from an exported [`RollerState`], resuming the
    /// stream exactly where the exporter stood.
    ///
    /// # Errors
    /// Rejects states with a zero window, an empty universe, or a current
    /// snapshot whose feature width disagrees with `feature_dim` —
    /// shapes a live roller can never reach, so they signal a corrupt or
    /// mismatched checkpoint.
    pub fn from_state(state: RollerState) -> Result<Self, GraphError> {
        if state.window == 0 || state.current.num_vertices() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if state.current.features().cols() != state.feature_dim {
            return Err(GraphError::FeatureDimMismatch {
                expected: state.feature_dim,
                found: state.current.features().cols(),
                snapshot: 0,
            });
        }
        let maintainer = state.maintainer.map(|m| {
            let mut pm = PlanMaintainer::new();
            pm.import_state(m);
            pm
        });
        Ok(Self {
            window: state.window,
            feature_dim: state.feature_dim,
            current: state.current,
            pending: state.pending,
            sealed: state.sealed,
            seq: state.seq,
            ticks: state.ticks,
            maintainer,
        })
    }
}

/// A [`WindowRoller`] fronted by per-shard admission lanes.
///
/// Mutation events are validated and routed to their owning shard's lane
/// at admission ([`ShardLanes::admit`]); a tick merges the lanes back
/// into global arrival order and replays them through the inner roller
/// before sealing. Because the merge reconstructs the exact sequential
/// event order, the rolled windows — snapshots, plans, and therefore
/// output digests — are bit-identical to a plain [`WindowRoller`] fed
/// the same stream, for any shard count.
#[derive(Debug)]
pub struct ShardedRoller {
    inner: WindowRoller,
    lanes: ShardLanes,
    /// Seal-stat totals since construction (merged + cross-shard).
    seal_totals: SealStats,
}

impl ShardedRoller {
    /// Wraps `inner` with admission lanes over `router`.
    pub fn new(inner: WindowRoller, router: ShardRouter) -> Self {
        Self {
            inner,
            lanes: ShardLanes::new(router),
            seal_totals: SealStats::default(),
        }
    }

    /// The underlying roller (stats accessors, etc.).
    pub fn inner(&self) -> &WindowRoller {
        &self.inner
    }

    /// Cumulative events routed per shard.
    pub fn routed(&self) -> &[u64] {
        self.lanes.routed()
    }

    /// Cumulative seal statistics (merged events, cross-shard edges).
    pub fn seal_totals(&self) -> SealStats {
        self.seal_totals
    }

    /// Feeds one event: mutations validate then park in their owning
    /// shard's lane; a tick merges all lanes in arrival order, replays
    /// them through the inner roller, and seals. Semantics (including
    /// rejection of malformed events at admission) match
    /// [`WindowRoller::apply`].
    pub fn apply(&mut self, event: &EdgeEvent) -> Result<Option<RolledWindow>, GraphError> {
        match event {
            EdgeEvent::Tick => {
                let (merged, stats) = self.lanes.seal();
                self.seal_totals.merged_events += stats.merged_events;
                self.seal_totals.cross_shard_edges += stats.cross_shard_edges;
                for e in &merged {
                    self.inner.apply(e)?;
                }
                self.inner.apply(&EdgeEvent::Tick)
            }
            e => {
                e.validate(self.inner.universe(), self.inner.feature_dim())?;
                self.lanes.admit(e.clone());
                Ok(None)
            }
        }
    }

    /// Flushes the inner roller's sealed tail. Un-ticked lane events stay
    /// parked (they belong to a snapshot that was never sealed), matching
    /// the plain roller's treatment of pending mutations.
    pub fn flush(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        self.inner.flush()
    }

    /// Clones the inner roller, buffered lanes, and seal totals into a
    /// checkpointable [`ShardedRollerState`].
    pub fn export_state(&self) -> ShardedRollerState {
        ShardedRollerState {
            inner: self.inner.export_state(),
            lanes: self.lanes.export_state(),
            seal_totals: self.seal_totals,
        }
    }

    /// Rebuilds a sharded roller from an exported state over a freshly
    /// constructed `router` (routers are config-derived and deterministic,
    /// so they are rebuilt rather than persisted).
    ///
    /// # Errors
    /// Propagates [`WindowRoller::from_state`] validation failures, and
    /// rejects states whose lane count disagrees with `router`'s shard
    /// count (as [`GraphError::EmptyGraph`] — a shape no live deployment
    /// reaches without a config/checkpoint mismatch).
    pub fn from_state(state: ShardedRollerState, router: ShardRouter) -> Result<Self, GraphError> {
        let inner = WindowRoller::from_state(state.inner)?;
        let mut lanes = ShardLanes::new(router);
        if lanes.import_state(state.lanes).is_err() {
            return Err(GraphError::EmptyGraph);
        }
        Ok(Self {
            inner,
            lanes,
            seal_totals: state.seal_totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::events_from_graph;
    use tagnn_graph::generate::GeneratorConfig;

    #[test]
    fn rolled_windows_match_offline_batching() {
        let g = GeneratorConfig::tiny().generate(); // 6 snapshots
        let window = 4;
        let mut roller = WindowRoller::new(g.num_vertices(), g.feature_dim(), window);
        let mut rolled = Vec::new();
        for events in events_from_graph(&g) {
            for e in &events {
                if let Some(w) = roller.apply(e).expect("trace events are valid") {
                    rolled.push(w);
                }
            }
        }
        if let Some(w) = roller.flush().unwrap() {
            rolled.push(w);
        }
        let offline: Vec<&[Snapshot]> = g.batches(window).collect();
        assert_eq!(rolled.len(), offline.len());
        for (w, batch) in rolled.iter().zip(&offline) {
            assert_eq!(w.graph.snapshots(), *batch, "window {} differs", w.seq);
        }
        assert_eq!(rolled[0].seq, 0);
        assert_eq!(rolled.last().unwrap().seq, rolled.len() as u64 - 1);
    }

    #[test]
    fn bad_event_is_rejected_and_stream_continues() {
        let mut roller = WindowRoller::new(4, 2, 2);
        let bad = EdgeEvent::AddEdge { src: 0, dst: 99 };
        assert!(roller.apply(&bad).is_err());
        assert_eq!(roller.pending_len(), 0, "rejected event must not buffer");
        roller
            .apply(&EdgeEvent::AddEdge { src: 0, dst: 1 })
            .unwrap();
        assert_eq!(roller.pending_len(), 1);
        assert!(roller.apply(&EdgeEvent::Tick).unwrap().is_none());
        let w = roller.apply(&EdgeEvent::Tick).unwrap().expect("K=2 rolls");
        assert_eq!(w.graph.num_snapshots(), 2);
        assert_eq!(w.graph.snapshot(0).num_edges(), 1);
    }

    #[test]
    fn flush_emits_short_tail() {
        let mut roller = WindowRoller::new(4, 2, 3);
        roller.apply(&EdgeEvent::Tick).unwrap();
        let tail = roller.flush().unwrap().expect("one sealed snapshot");
        assert_eq!(tail.graph.num_snapshots(), 1);
        assert!(roller.flush().unwrap().is_none(), "flush drains");
    }

    use tagnn_graph::WindowPlanner;

    /// Runs `event runs` (one `Vec` per tick, Tick appended automatically)
    /// through two rollers — incremental planning on and off — and checks
    /// (a) both roll bit-identical windows, (b) every incremental window
    /// carries a plan bit-identical to the scratch oracle over the same
    /// snapshots. Returns the incremental windows.
    fn check_runs_against_offline(
        universe: usize,
        feature_dim: usize,
        window: usize,
        runs: &[Vec<EdgeEvent>],
    ) -> Vec<RolledWindow> {
        let mut plain = WindowRoller::new(universe, feature_dim, window);
        let mut incr = WindowRoller::new(universe, feature_dim, window).with_incremental_planning();
        let mut plain_windows = Vec::new();
        let mut incr_windows = Vec::new();
        for run in runs {
            for e in run.iter().chain(std::iter::once(&EdgeEvent::Tick)) {
                if let Some(w) = plain.apply(e).expect("valid events") {
                    plain_windows.push(w);
                }
                if let Some(w) = incr.apply(e).expect("valid events") {
                    incr_windows.push(w);
                }
            }
        }
        if let Some(w) = plain.flush().unwrap() {
            plain_windows.push(w);
        }
        if let Some(w) = incr.flush().unwrap() {
            incr_windows.push(w);
        }
        assert_eq!(plain_windows.len(), incr_windows.len());
        for (p, i) in plain_windows.iter().zip(&incr_windows) {
            assert_eq!(p.graph, i.graph, "window {} diverged", p.seq);
            assert!(p.plan.is_none(), "plain roller must not plan");
            let plan = i
                .plan
                .as_ref()
                .expect("incremental roller seals every window");
            let refs: Vec<&Snapshot> = i.graph.snapshots().iter().collect();
            let scratch = WindowPlanner::new(window)
                .try_plan_window(&refs, 0)
                .expect("valid window");
            assert_eq!(
                plan.as_ref(),
                &scratch,
                "window {}: sealed plan diverged from scratch",
                i.seq
            );
            assert_eq!(plan.fingerprint(), scratch.fingerprint());
        }
        assert_eq!(
            incr.maintainer_stats()
                .expect("maintainer attached")
                .fallbacks,
            0
        );
        incr_windows
    }

    #[test]
    fn empty_tick_only_windows_roll_and_plan_identically() {
        // Five ticks with no mutations at all: two K=2 windows plus a
        // flushed tail, every snapshot the unchanged empty base.
        let runs: Vec<Vec<EdgeEvent>> = vec![vec![]; 5];
        let windows = check_runs_against_offline(4, 2, 2, &runs);
        assert_eq!(windows.len(), 3);
        assert!(windows
            .iter()
            .all(|w| w.graph.snapshots()[0].num_edges() == 0));
    }

    #[test]
    fn duplicate_edge_insert_and_remove_within_one_window() {
        let runs = vec![
            // Duplicate inserts of the same edge in one tick batch.
            vec![
                EdgeEvent::AddEdge { src: 0, dst: 1 },
                EdgeEvent::AddEdge { src: 0, dst: 1 },
                EdgeEvent::AddEdge { src: 1, dst: 2 },
            ],
            // Insert + remove of the same edge in one batch (net no-op),
            // plus a duplicate remove of an existing edge.
            vec![
                EdgeEvent::AddEdge { src: 2, dst: 3 },
                EdgeEvent::RemoveEdge { src: 2, dst: 3 },
                EdgeEvent::RemoveEdge { src: 0, dst: 1 },
                EdgeEvent::RemoveEdge { src: 0, dst: 1 },
            ],
        ];
        let windows = check_runs_against_offline(4, 2, 2, &runs);
        assert_eq!(windows.len(), 1);
        let snaps = windows[0].graph.snapshots();
        assert_eq!(snaps[0].num_edges(), 2, "duplicate insert is idempotent");
        assert_eq!(snaps[1].num_edges(), 1, "duplicate remove is idempotent");
    }

    #[test]
    fn feature_update_only_windows() {
        let runs = vec![
            vec![EdgeEvent::UpdateFeature {
                v: 1,
                feature: vec![1.0, 2.0],
            }],
            vec![
                EdgeEvent::UpdateFeature {
                    v: 1,
                    feature: vec![3.0, 4.0],
                },
                EdgeEvent::UpdateFeature {
                    v: 2,
                    feature: vec![5.0, 6.0],
                },
            ],
            // A mutate-back-to-original tick: still affected for the
            // window (instability is monotone within a window).
            vec![EdgeEvent::UpdateFeature {
                v: 2,
                feature: vec![0.0, 0.0],
            }],
        ];
        let windows = check_runs_against_offline(4, 2, 3, &runs);
        assert_eq!(windows.len(), 1);
        let plan = windows[0].plan.as_ref().unwrap();
        assert!(plan.stats().counts.affected >= 2, "v1 and v2 are affected");
    }

    #[test]
    fn sharded_roller_is_bit_identical_for_any_shard_count() {
        let g = GeneratorConfig::tiny().generate();
        let trace = events_from_graph(&g);
        let window = 3;
        // Reference: plain single-engine roller.
        let mut plain = WindowRoller::new(g.num_vertices(), g.feature_dim(), window)
            .with_incremental_planning();
        let mut reference = Vec::new();
        for events in &trace {
            for e in events {
                if let Some(w) = plain.apply(e).unwrap() {
                    reference.push(w);
                }
            }
        }
        if let Some(w) = plain.flush().unwrap() {
            reference.push(w);
        }
        assert!(!reference.is_empty());
        for shards in [1usize, 2, 4, 8] {
            let inner = WindowRoller::new(g.num_vertices(), g.feature_dim(), window)
                .with_incremental_planning();
            let router = crate::shard::ShardRouter::hash(g.num_vertices(), shards);
            let mut sharded = ShardedRoller::new(inner, router);
            let mut rolled = Vec::new();
            for events in &trace {
                for e in events {
                    if let Some(w) = sharded.apply(e).unwrap() {
                        rolled.push(w);
                    }
                }
            }
            if let Some(w) = sharded.flush().unwrap() {
                rolled.push(w);
            }
            assert_eq!(rolled.len(), reference.len(), "{shards} shards");
            for (s, r) in rolled.iter().zip(&reference) {
                assert_eq!(s.graph, r.graph, "{shards} shards: window {} graph", r.seq);
                assert_eq!(
                    s.plan.as_deref(),
                    r.plan.as_deref(),
                    "{shards} shards: window {} plan",
                    r.seq
                );
            }
            let total: u64 = sharded.routed().iter().sum();
            assert_eq!(total, sharded.seal_totals().merged_events);
            if shards == 1 {
                assert_eq!(sharded.seal_totals().cross_shard_edges, 0);
            }
        }
    }

    #[test]
    fn sharded_roller_rejects_bad_events_without_buffering() {
        let inner = WindowRoller::new(4, 2, 2);
        let router = crate::shard::ShardRouter::hash(4, 2);
        let mut sharded = ShardedRoller::new(inner, router);
        assert!(sharded
            .apply(&EdgeEvent::AddEdge { src: 0, dst: 99 })
            .is_err());
        assert_eq!(sharded.routed().iter().sum::<u64>(), 0);
        sharded
            .apply(&EdgeEvent::AddEdge { src: 0, dst: 1 })
            .unwrap();
        assert!(sharded.apply(&EdgeEvent::Tick).unwrap().is_none());
        let w = sharded.apply(&EdgeEvent::Tick).unwrap().expect("K=2 rolls");
        assert_eq!(w.graph.snapshot(0).num_edges(), 1);
    }

    /// Cuts a generated stream at every event boundary, exports the
    /// roller there, restores into a fresh roller, and finishes both —
    /// the restored roller must roll bit-identical windows (graphs AND
    /// incrementally sealed plans) from every cut point.
    #[test]
    fn exported_roller_resumes_bit_identically_from_any_cut() {
        let g = GeneratorConfig::tiny().generate();
        let events: Vec<EdgeEvent> = events_from_graph(&g).into_iter().flatten().collect();
        // Probe a spread of cut points including mid-batch and mid-window.
        for cut in [1usize, 3, 7, events.len() / 2, events.len() - 1] {
            let mut original =
                WindowRoller::new(g.num_vertices(), g.feature_dim(), 4).with_incremental_planning();
            let mut head_windows = Vec::new();
            for e in &events[..cut] {
                if let Some(w) = original.apply(e).unwrap() {
                    head_windows.push(w);
                }
            }
            let state = original.export_state();
            let mut restored = WindowRoller::from_state(state).expect("valid export");
            let mut orig_tail = Vec::new();
            let mut rest_tail = Vec::new();
            for e in &events[cut..] {
                if let Some(w) = original.apply(e).unwrap() {
                    orig_tail.push(w);
                }
                if let Some(w) = restored.apply(e).unwrap() {
                    rest_tail.push(w);
                }
            }
            if let Some(w) = original.flush().unwrap() {
                orig_tail.push(w);
            }
            if let Some(w) = restored.flush().unwrap() {
                rest_tail.push(w);
            }
            assert_eq!(orig_tail.len(), rest_tail.len(), "cut {cut}");
            for (o, r) in orig_tail.iter().zip(&rest_tail) {
                assert_eq!(o.seq, r.seq, "cut {cut}");
                assert_eq!(o.graph, r.graph, "cut {cut}: window {} graph", o.seq);
                assert_eq!(
                    o.plan.as_deref(),
                    r.plan.as_deref(),
                    "cut {cut}: window {} plan",
                    o.seq
                );
            }
            assert_eq!(original.ticks(), restored.ticks(), "cut {cut}");
        }
    }

    #[test]
    fn sharded_roller_state_round_trips_mid_stream() {
        let g = GeneratorConfig::tiny().generate();
        let events: Vec<EdgeEvent> = events_from_graph(&g).into_iter().flatten().collect();
        let cut = events.len() / 2;
        let router = crate::shard::ShardRouter::hash(g.num_vertices(), 4);
        let inner =
            WindowRoller::new(g.num_vertices(), g.feature_dim(), 3).with_incremental_planning();
        let mut original = ShardedRoller::new(inner, router.clone());
        for e in &events[..cut] {
            original.apply(e).unwrap();
        }
        let state = original.export_state();
        let mut restored =
            ShardedRoller::from_state(state.clone(), router.clone()).expect("same topology");
        let mut orig_tail = Vec::new();
        let mut rest_tail = Vec::new();
        for e in &events[cut..] {
            if let Some(w) = original.apply(e).unwrap() {
                orig_tail.push(w);
            }
            if let Some(w) = restored.apply(e).unwrap() {
                rest_tail.push(w);
            }
        }
        assert_eq!(orig_tail, rest_tail);
        assert_eq!(original.routed(), restored.routed());
        assert_eq!(original.seal_totals(), restored.seal_totals());

        // Restoring under a different shard count is refused.
        let wrong = crate::shard::ShardRouter::hash(g.num_vertices(), 2);
        assert!(ShardedRoller::from_state(state, wrong).is_err());
    }

    #[test]
    fn from_state_rejects_corrupt_shapes() {
        let roller = WindowRoller::new(4, 2, 3);
        let good = roller.export_state();
        let mut zero_window = good.clone();
        zero_window.window = 0;
        assert!(WindowRoller::from_state(zero_window).is_err());
        let mut bad_dim = good;
        bad_dim.feature_dim = 5;
        assert!(matches!(
            WindowRoller::from_state(bad_dim),
            Err(GraphError::FeatureDimMismatch { .. })
        ));
    }

    #[test]
    fn rolled_plans_match_offline_on_generated_stream() {
        let g = GeneratorConfig::tiny().generate(); // 6 snapshots
        let runs: Vec<Vec<EdgeEvent>> = events_from_graph(&g)
            .into_iter()
            .map(|mut events| {
                assert_eq!(events.pop(), Some(EdgeEvent::Tick));
                events
            })
            .collect();
        let windows = check_runs_against_offline(g.num_vertices(), g.feature_dim(), 4, &runs);
        assert_eq!(windows.len(), 2, "4-window plus 2-tail");
        assert_eq!(
            windows[0].plan.as_ref().unwrap().source(),
            tagnn_graph::PlanSource::Incremental
        );
    }
}
