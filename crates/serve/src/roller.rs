//! Incremental window rolling.
//!
//! The offline pipeline batches a whole [`DynamicGraph`] into windows of K
//! snapshots up front; a server sees the graph one event at a time. The
//! [`WindowRoller`] maintains the forming snapshot of one stream: events
//! accumulate as pending [`GraphUpdate`]s, a [`EdgeEvent::Tick`] seals
//! them into the next snapshot (through the validating
//! [`try_apply_updates`] path), and every K sealed snapshots roll into a
//! [`RolledWindow`] — a K-snapshot [`DynamicGraph`] the planner and
//! engine consume exactly as they would an offline window. Because ticks
//! replay through the same apply/diff machinery the offline batcher uses,
//! rolled windows are bit-identical to the offline batching of the same
//! stream.

use tagnn_graph::delta::{try_apply_updates, GraphUpdate};
use tagnn_graph::{DynamicGraph, GraphError, Snapshot};

use crate::event::{empty_base, EdgeEvent};

/// One window of K sealed snapshots, ready to plan and execute.
#[derive(Debug, Clone, PartialEq)]
pub struct RolledWindow {
    /// 0-based index of this window within its stream.
    pub seq: u64,
    /// The window's snapshots as a standalone dynamic graph.
    pub graph: DynamicGraph,
}

/// Rolls the event stream of one logical stream into windows of K
/// snapshots.
#[derive(Debug)]
pub struct WindowRoller {
    window: usize,
    feature_dim: usize,
    current: Snapshot,
    pending: Vec<GraphUpdate>,
    sealed: Vec<Snapshot>,
    seq: u64,
    ticks: u64,
}

impl WindowRoller {
    /// A roller over `universe` vertices with `feature_dim`-dimensional
    /// features, emitting windows of `window` snapshots. The stream
    /// starts from the canonical [`empty_base`].
    ///
    /// # Panics
    /// Panics if `window == 0` or `universe == 0`.
    pub fn new(universe: usize, feature_dim: usize, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(universe > 0, "universe must be positive");
        Self {
            window,
            feature_dim,
            current: empty_base(universe, feature_dim),
            pending: Vec::new(),
            sealed: Vec::new(),
            seq: 0,
            ticks: 0,
        }
    }

    /// Window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Snapshots sealed but not yet rolled into a window.
    pub fn sealed_len(&self) -> usize {
        self.sealed.len()
    }

    /// Events applied since the last tick (pending mutations).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total ticks (sealed snapshots) this stream has seen.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Feeds one event. Mutation events are validated immediately and
    /// buffered; a [`EdgeEvent::Tick`] seals the pending mutations into
    /// the next snapshot and — every K-th tick — returns the rolled
    /// window. A rejected event leaves the roller untouched, so one bad
    /// client event never corrupts the stream.
    pub fn apply(&mut self, event: &EdgeEvent) -> Result<Option<RolledWindow>, GraphError> {
        event.validate(self.current.num_vertices(), self.feature_dim)?;
        match event.as_update() {
            Some(update) => {
                self.pending.push(update);
                Ok(None)
            }
            None => self.tick(),
        }
    }

    fn tick(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        let next = try_apply_updates(&self.current, &std::mem::take(&mut self.pending))?;
        self.current = next.clone();
        self.sealed.push(next);
        self.ticks += 1;
        if self.sealed.len() == self.window {
            let graph = DynamicGraph::try_new(std::mem::take(&mut self.sealed))?;
            let seq = self.seq;
            self.seq += 1;
            Ok(Some(RolledWindow { seq, graph }))
        } else {
            Ok(None)
        }
    }

    /// Seals nothing, but flushes sealed-but-unrolled snapshots as a
    /// short tail window (`None` when there are none). Used at stream end
    /// so no sealed snapshot is ever lost.
    pub fn flush(&mut self) -> Result<Option<RolledWindow>, GraphError> {
        if self.sealed.is_empty() {
            return Ok(None);
        }
        let graph = DynamicGraph::try_new(std::mem::take(&mut self.sealed))?;
        let seq = self.seq;
        self.seq += 1;
        Ok(Some(RolledWindow { seq, graph }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::events_from_graph;
    use tagnn_graph::generate::GeneratorConfig;

    #[test]
    fn rolled_windows_match_offline_batching() {
        let g = GeneratorConfig::tiny().generate(); // 6 snapshots
        let window = 4;
        let mut roller = WindowRoller::new(g.num_vertices(), g.feature_dim(), window);
        let mut rolled = Vec::new();
        for events in events_from_graph(&g) {
            for e in &events {
                if let Some(w) = roller.apply(e).expect("trace events are valid") {
                    rolled.push(w);
                }
            }
        }
        if let Some(w) = roller.flush().unwrap() {
            rolled.push(w);
        }
        let offline: Vec<&[Snapshot]> = g.batches(window).collect();
        assert_eq!(rolled.len(), offline.len());
        for (w, batch) in rolled.iter().zip(&offline) {
            assert_eq!(w.graph.snapshots(), *batch, "window {} differs", w.seq);
        }
        assert_eq!(rolled[0].seq, 0);
        assert_eq!(rolled.last().unwrap().seq, rolled.len() as u64 - 1);
    }

    #[test]
    fn bad_event_is_rejected_and_stream_continues() {
        let mut roller = WindowRoller::new(4, 2, 2);
        let bad = EdgeEvent::AddEdge { src: 0, dst: 99 };
        assert!(roller.apply(&bad).is_err());
        assert_eq!(roller.pending_len(), 0, "rejected event must not buffer");
        roller
            .apply(&EdgeEvent::AddEdge { src: 0, dst: 1 })
            .unwrap();
        assert_eq!(roller.pending_len(), 1);
        assert!(roller.apply(&EdgeEvent::Tick).unwrap().is_none());
        let w = roller.apply(&EdgeEvent::Tick).unwrap().expect("K=2 rolls");
        assert_eq!(w.graph.num_snapshots(), 2);
        assert_eq!(w.graph.snapshot(0).num_edges(), 1);
    }

    #[test]
    fn flush_emits_short_tail() {
        let mut roller = WindowRoller::new(4, 2, 3);
        roller.apply(&EdgeEvent::Tick).unwrap();
        let tail = roller.flush().unwrap().expect("one sealed snapshot");
        assert_eq!(tail.graph.num_snapshots(), 1);
        assert!(roller.flush().unwrap().is_none(), "flush drains");
    }
}
