//! Trace-replaying load generator for the TCP frontend.
//!
//! Replays the canonical event trace of a generated dynamic graph
//! ([`crate::event::events_from_graph`]) against a server, one request
//! per snapshot, in either of the two classical load-testing disciplines:
//!
//! * **closed loop** (`rate == 0`): each connection keeps exactly one
//!   request in flight — send, wait, repeat — measuring the service's
//!   best-case latency under `connections`-way concurrency;
//! * **open loop** (`rate > 0`): requests are paced at a fixed aggregate
//!   rate regardless of completions, so queueing (and shedding) shows up
//!   in the tail latency instead of silently slowing the generator —
//!   the discipline that actually exposes overload behaviour.
//!
//! Each trace pass runs on a fresh stream id, so the server's per-stream
//! state stays canonical and repeated passes exercise the plan cache.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tagnn_graph::generate::GeneratorConfig;
use tagnn_obs::Histogram;

use crate::binwire;
use crate::event::{events_from_graph, EdgeEvent};
use crate::json;
use crate::server::WireFormat;
use crate::wire;

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7433`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Aggregate request rate across all connections (requests/s);
    /// `0.0` selects closed-loop mode.
    pub rate: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Generator for the replayed dynamic graph (the trace).
    pub graph: GeneratorConfig,
    /// Protocol to speak — must match the server's `--wire` flag.
    pub wire: WireFormat,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7433".into(),
            connections: 2,
            rate: 0.0,
            duration: Duration::from_secs(5),
            graph: GeneratorConfig::tiny(),
            wire: WireFormat::Binary,
        }
    }
}

/// Aggregated outcome of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenSummary {
    /// Requests sent.
    pub requests: u64,
    /// Successful replies.
    pub replies: u64,
    /// Replies shed with the `overloaded` code.
    pub shed: u64,
    /// Other error replies (protocol/rejected/closed) and I/O failures.
    pub errors: u64,
    /// Events carried by successful replies.
    pub events: u64,
    /// Windows completed by successful replies.
    pub windows: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Request latency distribution in microseconds (send → reply).
    pub latency_us: Histogram,
}

impl LoadgenSummary {
    fn empty() -> Self {
        Self {
            requests: 0,
            replies: 0,
            shed: 0,
            errors: 0,
            events: 0,
            windows: 0,
            elapsed: Duration::ZERO,
            latency_us: Histogram::new(),
        }
    }

    fn merge(&mut self, other: &Self) {
        self.requests += other.requests;
        self.replies += other.replies;
        self.shed += other.shed;
        self.errors += other.errors;
        self.events += other.events;
        self.windows += other.windows;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latency_us.merge(&other.latency_us);
    }

    /// Successful replies per second.
    pub fn replies_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.replies as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            concat!(
                r#"{{"requests":{},"replies":{},"shed":{},"errors":{},"#,
                r#""events":{},"windows":{},"elapsed_s":"#
            ),
            self.requests, self.replies, self.shed, self.errors, self.events, self.windows
        );
        json::write_f64(&mut out, self.elapsed.as_secs_f64());
        out.push_str(",\"replies_per_sec\":");
        json::write_f64(&mut out, self.replies_per_sec());
        out.push_str(",\"latency_us\":{");
        let h = &self.latency_us;
        let _ = write!(out, r#""count":{}"#, h.count());
        for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let _ = write!(out, r#","{label}":{}"#, h.quantile(q));
        }
        out.push_str(",\"mean\":");
        json::write_f64(&mut out, h.mean());
        let _ = write!(out, r#","max":{}}}}}"#, h.max());
        out
    }
}

/// The per-request payloads of one trace pass: `(events, flush)` per
/// snapshot.
pub type Trace = Vec<(Vec<EdgeEvent>, bool)>;

/// Builds the replay trace for `graph`'s generator config.
pub fn build_trace(cfg: &GeneratorConfig) -> Trace {
    let graph = cfg.generate();
    let per_snapshot = events_from_graph(&graph);
    let last = per_snapshot.len().saturating_sub(1);
    per_snapshot
        .into_iter()
        .enumerate()
        .map(|(i, events)| (events, i == last))
        .collect()
}

/// Runs the configured load against the server and aggregates the
/// outcome across connections. Connects eagerly; a connection failure is
/// returned as an error rather than silently measured as zero load.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenSummary> {
    let trace = Arc::new(build_trace(&cfg.graph));
    let connections = cfg.connections.max(1);
    let per_conn_rate = if cfg.rate > 0.0 {
        cfg.rate / connections as f64
    } else {
        0.0
    };

    let mut streams = Vec::with_capacity(connections);
    for _ in 0..connections {
        streams.push(TcpStream::connect(&cfg.addr)?);
    }

    let started = Instant::now();
    let deadline = started + cfg.duration;
    let handles: Vec<_> = streams
        .into_iter()
        .enumerate()
        .map(|(conn_id, stream)| {
            let trace = Arc::clone(&trace);
            let wire_fmt = cfg.wire;
            std::thread::spawn(move || {
                let mut summary = LoadgenSummary::empty();
                let result = if per_conn_rate > 0.0 {
                    open_loop(
                        stream,
                        conn_id,
                        &trace,
                        wire_fmt,
                        per_conn_rate,
                        deadline,
                        &mut summary,
                    )
                } else {
                    closed_loop(stream, conn_id, &trace, wire_fmt, deadline, &mut summary)
                };
                if result.is_err() {
                    summary.errors += 1;
                }
                summary.elapsed = started.elapsed();
                summary
            })
        })
        .collect();

    let mut total = LoadgenSummary::empty();
    for h in handles {
        let conn = h.join().expect("loadgen worker panicked");
        total.merge(&conn);
    }
    Ok(total)
}

/// Accounts one JSON reply line into the summary.
fn account_reply(line: &str, summary: &mut LoadgenSummary) {
    match json::parse(line.trim()) {
        Ok(doc) if doc.get("ok").and_then(json::Value::as_bool) == Some(true) => {
            summary.replies += 1;
            if let Some(n) = doc.get("accepted").and_then(json::Value::as_u64) {
                summary.events += n;
            }
            if let Some(w) = doc.get("windows").and_then(json::Value::as_array) {
                summary.windows += w.len() as u64;
            }
        }
        Ok(doc) if doc.get("error").and_then(json::Value::as_str) == Some("overloaded") => {
            summary.shed += 1;
        }
        _ => summary.errors += 1,
    }
}

/// Accounts one binary reply frame into the summary.
fn account_binary_reply(kind: u8, body: &[u8], summary: &mut LoadgenSummary) {
    match kind {
        binwire::kind::INFER_REPLY => match binwire::decode_reply(body) {
            Ok(r) => {
                summary.replies += 1;
                summary.events += r.accepted_events as u64;
                summary.windows += r.windows.len() as u64;
            }
            Err(_) => summary.errors += 1,
        },
        binwire::kind::ERROR => match binwire::decode_error(body) {
            Ok((code, _)) if code == "overloaded" => summary.shed += 1,
            _ => summary.errors += 1,
        },
        _ => summary.errors += 1,
    }
}

/// Encodes one infer request in the configured wire format, ready to
/// write to the socket as-is (JSON lines carry their newline).
fn encode_request(
    wire_fmt: WireFormat,
    id: u64,
    sid: u64,
    events: &[EdgeEvent],
    flush: bool,
) -> Vec<u8> {
    match wire_fmt {
        WireFormat::Binary => {
            let mut out = Vec::new();
            binwire::encode_infer(&mut out, id, sid, events, flush);
            out
        }
        WireFormat::Json => {
            let mut line = wire::encode_infer(id, sid, events, flush);
            line.push('\n');
            line.into_bytes()
        }
    }
}

/// The receive half of a loadgen connection: reads one reply at a time
/// in the configured wire format and accounts it.
enum Receiver {
    Json(BufReader<TcpStream>),
    Binary(TcpStream, binwire::FrameReader),
}

impl Receiver {
    fn new(stream: TcpStream, wire_fmt: WireFormat) -> Self {
        match wire_fmt {
            WireFormat::Json => Receiver::Json(BufReader::new(stream)),
            WireFormat::Binary => Receiver::Binary(stream, binwire::FrameReader::new()),
        }
    }

    /// Reads and accounts one reply; `Ok(false)` means the server hung
    /// up cleanly.
    fn recv(&mut self, summary: &mut LoadgenSummary) -> std::io::Result<bool> {
        match self {
            Receiver::Json(reader) => {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 {
                    return Ok(false);
                }
                account_reply(&line, summary);
                Ok(true)
            }
            Receiver::Binary(stream, frames) => match frames.read_frame(stream)? {
                None => Ok(false),
                Some((kind, _, body)) => {
                    account_binary_reply(kind, &body, summary);
                    Ok(true)
                }
            },
        }
    }
}

/// Stream ids never collide across connections or passes.
fn stream_id(conn_id: usize, pass: u64) -> u64 {
    (conn_id as u64) << 32 | pass
}

fn closed_loop(
    mut stream: TcpStream,
    conn_id: usize,
    trace: &Trace,
    wire_fmt: WireFormat,
    deadline: Instant,
    summary: &mut LoadgenSummary,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut receiver = Receiver::new(stream.try_clone()?, wire_fmt);
    let mut id = 0u64;
    'outer: for pass in 0.. {
        let sid = stream_id(conn_id, pass);
        for (events, flush) in trace {
            if Instant::now() >= deadline {
                break 'outer;
            }
            id += 1;
            let req = encode_request(wire_fmt, id, sid, events, *flush);
            let sent = Instant::now();
            stream.write_all(&req)?;
            summary.requests += 1;
            if !receiver.recv(summary)? {
                break 'outer; // server closed
            }
            summary.latency_us.record(sent.elapsed().as_micros() as u64);
        }
    }
    Ok(())
}

fn open_loop(
    mut stream: TcpStream,
    conn_id: usize,
    trace: &Trace,
    wire_fmt: WireFormat,
    rate: f64,
    deadline: Instant,
    summary: &mut LoadgenSummary,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    // Replies come back in request order per connection, so a queue of
    // send timestamps is enough to match latencies — no id map needed.
    let in_flight: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
    let reader_summary: Arc<Mutex<LoadgenSummary>> = Arc::new(Mutex::new(LoadgenSummary::empty()));

    let reader = {
        let in_flight = Arc::clone(&in_flight);
        let reader_summary = Arc::clone(&reader_summary);
        std::thread::spawn(move || {
            let mut receiver = Receiver::new(reader_stream, wire_fmt);
            loop {
                // Account into a scratch summary so no lock is held
                // while the read blocks.
                let mut one = LoadgenSummary::empty();
                match receiver.recv(&mut one) {
                    Ok(true) => {
                        let sent = in_flight.lock().unwrap().pop_front();
                        let mut s = reader_summary.lock().unwrap();
                        if let Some(sent) = sent {
                            s.latency_us.record(sent.elapsed().as_micros() as u64);
                        }
                        s.merge(&one);
                    }
                    Ok(false) | Err(_) => return,
                }
            }
        })
    };

    let interval = Duration::from_secs_f64(1.0 / rate.max(1e-9));
    let mut next_send = Instant::now();
    let mut id = 0u64;
    'outer: for pass in 0.. {
        let sid = stream_id(conn_id, pass);
        for (events, flush) in trace {
            let now = Instant::now();
            if now >= deadline {
                break 'outer;
            }
            if next_send > now {
                std::thread::sleep(next_send - now);
            }
            next_send += interval;
            id += 1;
            let req = encode_request(wire_fmt, id, sid, events, *flush);
            in_flight.lock().unwrap().push_back(Instant::now());
            stream.write_all(&req)?;
            summary.requests += 1;
        }
    }

    // Give in-flight requests a grace period to drain, then hang up (the
    // reader exits on EOF once the socket drops).
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while !in_flight.lock().unwrap().is_empty() && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = reader.join();
    summary.merge(&reader_summary.lock().unwrap());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::core::ServeCore;
    use crate::server::Server;

    fn test_server(wire_fmt: WireFormat) -> Server {
        let cfg = ServeConfig {
            window: 3,
            ..ServeConfig::default()
        };
        Server::bind_with(ServeCore::start(cfg), "127.0.0.1:0", wire_fmt).unwrap()
    }

    #[test]
    fn closed_loop_replays_and_measures() {
        let server = test_server(WireFormat::Binary);
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            connections: 2,
            rate: 0.0,
            duration: Duration::from_millis(400),
            graph: GeneratorConfig::tiny(),
            wire: WireFormat::Binary,
        };
        let summary = run(&cfg).unwrap();
        assert!(summary.requests > 0);
        assert_eq!(summary.replies, summary.requests, "closed loop never sheds");
        assert_eq!(summary.errors, 0);
        assert!(summary.windows > 0, "a full pass rolls windows");
        assert_eq!(summary.latency_us.count(), summary.requests);
        let json = summary.to_json();
        let doc = json::parse(&json).unwrap();
        assert!(doc.get("latency_us").unwrap().get("p50").is_some());
        server.shutdown();
    }

    #[test]
    fn closed_loop_speaks_json_when_asked() {
        let server = test_server(WireFormat::Json);
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            connections: 1,
            rate: 0.0,
            duration: Duration::from_millis(200),
            graph: GeneratorConfig::tiny(),
            wire: WireFormat::Json,
        };
        let summary = run(&cfg).unwrap();
        assert!(summary.requests > 0);
        assert_eq!(summary.replies, summary.requests);
        assert_eq!(summary.errors, 0);
        server.shutdown();
    }

    #[test]
    fn open_loop_paces_and_drains() {
        let server = test_server(WireFormat::Binary);
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            connections: 1,
            rate: 200.0,
            duration: Duration::from_millis(300),
            graph: GeneratorConfig::tiny(),
            wire: WireFormat::Binary,
        };
        let summary = run(&cfg).unwrap();
        assert!(summary.requests > 0);
        // ~200 req/s for 0.3 s ≈ 60; the pacer must not blast unbounded.
        assert!(summary.requests <= 120, "got {}", summary.requests);
        assert_eq!(
            summary.replies + summary.shed + summary.errors,
            summary.requests
        );
        server.shutdown();
    }
}
