//! Bounded MPMC queue with deadline-based micro-batching.
//!
//! The serving core backpressures at two points — admission and the
//! per-worker window queues — and both use this queue: a `Mutex` +
//! `Condvar` ring with a hard capacity. `try_push` sheds instead of
//! blocking (the admission side of graceful degradation) and
//! [`BoundedQueue::pop_batch`] implements the `max_batch`/`max_delay`
//! micro-batching discipline: return as soon as `max_batch` items are
//! buffered, or whatever has arrived once `max_delay` has passed since
//! the first item of the batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued.
    Queued {
        /// Queue depth immediately after the push.
        depth: usize,
    },
    /// The queue was full; the item was returned to the caller.
    Full,
    /// The queue has been closed; the item was returned to the caller.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Enqueues without blocking; sheds with [`PushOutcome::Full`] when at
    /// capacity. The item is returned alongside so the caller can reply.
    pub fn try_push(&self, item: T) -> (PushOutcome, Option<T>) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return (PushOutcome::Closed, Some(item));
        }
        if st.items.len() >= self.capacity {
            return (PushOutcome::Full, Some(item));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.not_empty.notify_one();
        (PushOutcome::Queued { depth }, None)
    }

    /// Enqueues, blocking while the queue is at capacity — the
    /// backpressure path between pipeline stages. Returns the item back
    /// if the queue closes before space frees up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Pops one item, blocking until one arrives or the queue is closed
    /// and drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Pops a micro-batch: blocks for the first item, then keeps
    /// collecting until `max_batch` items are in hand or `max_delay` has
    /// elapsed since the first item was taken. Returns an empty vec only
    /// when the queue is closed and drained.
    pub fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Vec<T> {
        let max_batch = max_batch.max(1);
        let mut batch = Vec::new();
        let mut st = self.state.lock().unwrap();
        // Block for the first item (or closure).
        loop {
            if !st.items.is_empty() {
                break;
            }
            if st.closed {
                return batch;
            }
            st = self.not_empty.wait(st).unwrap();
        }
        let deadline = Instant::now() + max_delay;
        loop {
            while batch.len() < max_batch {
                match st.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            let now = Instant::now();
            if batch.len() >= max_batch || st.closed || now >= deadline {
                break;
            }
            let (next, timeout) = self.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = next;
            if timeout.timed_out() && st.items.is_empty() {
                break;
            }
        }
        drop(st);
        self.not_full.notify_all();
        batch
    }

    /// Closes the queue: pending items remain poppable, new pushes shed
    /// with [`PushOutcome::Closed`], and blocked poppers drain then get
    /// `None`/empty batches. Both condvars are notified — a producer
    /// blocked in [`Self::push`] at capacity waits on `not_full` and must
    /// observe the closure too, or shutdown deadlocks.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).0, PushOutcome::Queued { depth: 1 });
        assert_eq!(q.try_push(2).0, PushOutcome::Queued { depth: 2 });
        let (outcome, returned) = q.try_push(3);
        assert_eq!(outcome, PushOutcome::Full);
        assert_eq!(returned, Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).0, PushOutcome::Queued { depth: 2 });
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.try_push(i);
        }
        let batch = q.pop_batch(3, Duration::from_millis(50));
        assert_eq!(batch, vec![0, 1, 2]);
        let batch = q.pop_batch(3, Duration::from_millis(1));
        assert_eq!(batch, vec![3, 4]);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(7);
        q.close();
        assert_eq!(q.try_push(8).0, PushOutcome::Closed);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert!(q.pop_batch(4, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        h.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert!(q.push(3).is_err(), "push after close returns the item");
    }

    /// Regression: a producer blocked in `push()` at capacity must be
    /// woken by `close()` and get its item back. Before the fix, `close()`
    /// notified only `not_empty`, so the producer hung on `not_full`
    /// forever and shutdown deadlocked.
    #[test]
    fn close_unblocks_producer_blocked_at_capacity() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap(); // fill to capacity
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        // Let the producer reach the not_full wait.
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !producer.is_finished() {
            assert!(
                Instant::now() < deadline,
                "close() must wake a producer blocked on not_full"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            producer.join().unwrap(),
            Err(2),
            "the blocked item comes back to the caller"
        );
        // The pre-close item is still poppable; then the queue is dry.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_wakes_on_cross_thread_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_millis(200)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42);
        let batch = h.join().unwrap();
        assert_eq!(batch, vec![42]);
    }
}
