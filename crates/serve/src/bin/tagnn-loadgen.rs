//! Open/closed-loop load generator for a running `tagnn-serve` frontend.
//!
//! ```text
//! tagnn-loadgen --addr 127.0.0.1:7433 --connections 4 --rate 200 \
//!               --duration-s 30 --dataset gdelt --snapshots 8 --json
//! ```
//!
//! `--rate 0` (the default) selects closed-loop mode: each connection
//! keeps one request in flight. A positive rate paces requests at the
//! aggregate rate across connections (open loop), the discipline that
//! exposes queueing and shedding.

use std::time::Duration;

use tagnn_graph::generate::{DatasetPreset, GeneratorConfig};
use tagnn_serve::loadgen::{run, LoadgenConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tagnn-loadgen [--addr HOST:PORT] [--connections N] [--rate REQ_PER_S] \
         [--duration-s S] [--dataset hepph|gdelt|movielens|epinions|flickr] \
         [--snapshots N] [--seed N] [--wire binary|json] [--json]"
    );
    std::process::exit(2);
}

fn parse_dataset(name: &str) -> Option<DatasetPreset> {
    match name.to_ascii_lowercase().as_str() {
        "hepph" | "hp" => Some(DatasetPreset::HepPh),
        "gdelt" | "gt" => Some(DatasetPreset::Gdelt),
        "movielens" | "ml" => Some(DatasetPreset::MovieLens),
        "epinions" | "ep" => Some(DatasetPreset::Epinions),
        "flickr" | "fk" => Some(DatasetPreset::Flickr),
        _ => None,
    }
}

fn main() {
    let mut cfg = LoadgenConfig::default();
    let mut dataset: Option<DatasetPreset> = None;
    let mut snapshots = 8usize;
    let mut seed: Option<u64> = None;
    let mut emit_json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = value(&mut i),
            "--connections" => cfg.connections = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rate" => cfg.rate = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-s" => {
                cfg.duration =
                    Duration::from_secs_f64(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--dataset" => dataset = Some(parse_dataset(&value(&mut i)).unwrap_or_else(|| usage())),
            "--snapshots" => snapshots = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--wire" => {
                cfg.wire = tagnn_serve::WireFormat::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--json" => emit_json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
        i += 1;
    }

    cfg.graph = match dataset {
        Some(preset) => preset.config_small(snapshots),
        None => {
            let mut g = GeneratorConfig::tiny();
            g.num_snapshots = snapshots;
            g
        }
    };
    if let Some(seed) = seed {
        cfg.graph.seed = seed;
    }

    eprintln!(
        "tagnn-loadgen: {} connections -> {} ({} loop, {:?})",
        cfg.connections,
        cfg.addr,
        if cfg.rate > 0.0 { "open" } else { "closed" },
        cfg.duration
    );
    match run(&cfg) {
        Ok(summary) => {
            if emit_json {
                println!("{}", summary.to_json());
            } else {
                println!(
                    "requests={} replies={} shed={} errors={} windows={} \
                     rps={:.1} p50={}us p95={}us p99={}us max={}us",
                    summary.requests,
                    summary.replies,
                    summary.shed,
                    summary.errors,
                    summary.windows,
                    summary.replies_per_sec(),
                    summary.latency_us.quantile(0.50),
                    summary.latency_us.quantile(0.95),
                    summary.latency_us.quantile(0.99),
                    summary.latency_us.max(),
                );
            }
            if summary.replies == 0 && summary.requests > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("tagnn-loadgen: {e}");
            std::process::exit(1);
        }
    }
}
