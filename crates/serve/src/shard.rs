//! Vertex-universe sharding for the serve layer.
//!
//! A multi-shard server partitions the vertex universe across N engine
//! shards. Every mutation event has exactly one *owning shard* — the
//! shard that owns the event's anchor vertex (the source vertex for edge
//! events) — and is routed there at admission. Because a window must see
//! the stream's mutations in their original arrival order to stay
//! bit-identical with the single-engine path, each routed event is tagged
//! with a global arrival sequence number; at a tick the per-shard lanes
//! are merged back into arrival order before sealing ([`ShardLanes::seal`]),
//! which also accounts the cross-shard edges (edges whose endpoints live
//! on different shards — the traffic a distributed deployment would pay
//! at seal time to aggregate affected neighbours).
//!
//! Two assignment policies are supported: [`ShardAssignment::Hash`]
//! (SplitMix64 of the vertex id, uniform and oblivious) and
//! [`ShardAssignment::DegreeBalanced`], which reuses the simulator's Task
//! Dispatcher (LPT greedy over per-vertex degrees, the paper's §4.3
//! dispatcher) so hub vertices spread across shards instead of hashing
//! onto the same one by chance.

use tagnn_graph::types::VertexId;

use crate::event::EdgeEvent;

/// How the vertex universe maps to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// SplitMix64 hash of the vertex id modulo the shard count.
    Hash,
    /// Degree-balanced LPT assignment over per-vertex degree weights,
    /// via the simulator's Task Dispatcher. Falls back to [`Self::Hash`]
    /// when no degree profile is available.
    DegreeBalanced,
}

impl ShardAssignment {
    /// Parses the CLI / wire spelling (`"hash"` or `"degree"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(ShardAssignment::Hash),
            "degree" | "degree-balanced" => Some(ShardAssignment::DegreeBalanced),
            _ => None,
        }
    }
}

/// SplitMix64 finaliser — a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Immutable vertex → shard map shared by the admission path and the
/// seal-time aggregator.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    table: Vec<u32>,
}

impl ShardRouter {
    /// Hash assignment over a `universe`-vertex universe.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn hash(universe: usize, shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        let table = (0..universe)
            .map(|v| (splitmix64(v as u64) % shards as u64) as u32)
            .collect();
        Self { shards, table }
    }

    /// Degree-balanced assignment: vertex `v` weighs `degrees[v]` and the
    /// simulator's LPT dispatcher places it on the least-loaded shard, so
    /// per-shard total degree is near-uniform even under power-law skew.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn degree_balanced(degrees: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        let table = tagnn_sim::dispatch::balanced_assign(degrees, shards)
            .into_iter()
            .map(|s| s as u32)
            .collect();
        Self { shards, table }
    }

    /// Builds a router for `universe` vertices under `assignment`,
    /// consulting `degrees` only for [`ShardAssignment::DegreeBalanced`]
    /// (hash fallback when absent or of the wrong length).
    pub fn new(
        assignment: ShardAssignment,
        universe: usize,
        shards: usize,
        degrees: Option<&[u64]>,
    ) -> Self {
        match (assignment, degrees) {
            (ShardAssignment::DegreeBalanced, Some(d)) if d.len() == universe => {
                Self::degree_balanced(d, shards)
            }
            _ => Self::hash(universe, shards),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning vertex `v`. Out-of-universe vertices (which the
    /// admission validator rejects anyway) fall back to shard 0 so routing
    /// itself never panics.
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.table.get(v as usize).copied().unwrap_or(0) as usize
    }

    /// The shard owning `event`: the source vertex's shard for edge
    /// events (the adjacency row lives with its source), the vertex's
    /// shard for vertex/feature events, `None` for [`EdgeEvent::Tick`]
    /// (a tick is a stream-global barrier, not owned by any shard).
    pub fn route(&self, event: &EdgeEvent) -> Option<usize> {
        match event {
            EdgeEvent::AddEdge { src, .. } | EdgeEvent::RemoveEdge { src, .. } => {
                Some(self.shard_of(*src))
            }
            EdgeEvent::AddVertex { v }
            | EdgeEvent::RemoveVertex { v }
            | EdgeEvent::UpdateFeature { v, .. } => Some(self.shard_of(*v)),
            EdgeEvent::Tick => None,
        }
    }

    /// Whether an edge event spans two shards (its destination's owner
    /// differs from its source's): the seal-time aggregation traffic of a
    /// distributed deployment.
    pub fn is_cross_shard(&self, event: &EdgeEvent) -> bool {
        match event {
            EdgeEvent::AddEdge { src, dst } | EdgeEvent::RemoveEdge { src, dst } => {
                self.shard_of(*src) != self.shard_of(*dst)
            }
            _ => false,
        }
    }
}

/// Counters produced by one [`ShardLanes::seal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealStats {
    /// Mutations merged into this tick's seal.
    pub merged_events: u64,
    /// Merged edge events whose endpoints live on different shards.
    pub cross_shard_edges: u64,
}

/// Checkpointable image of a [`ShardLanes`]: the buffered per-lane
/// events with their arrival tags plus the cumulative counters. The
/// router itself is *not* part of the state — it is rebuilt from config
/// at recovery and the lane count is validated against it on import.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LanesState {
    /// Buffered `(arrival_seq, event)` pairs per shard lane.
    pub lanes: Vec<Vec<(u64, EdgeEvent)>>,
    /// Next global arrival sequence number.
    pub arrival: u64,
    /// Cumulative events routed to each shard since construction.
    pub routed: Vec<u64>,
}

/// Per-stream, per-shard admission lanes.
///
/// Mutation events are routed to their owning shard's lane tagged with a
/// global arrival sequence number. [`Self::seal`] merges all lanes back
/// into arrival order — reconstructing exactly the sequential event order
/// a single-engine server would have seen — so sealed snapshots, plans
/// and digests are bit-identical for *any* shard count by construction.
#[derive(Debug)]
pub struct ShardLanes {
    router: ShardRouter,
    lanes: Vec<Vec<(u64, EdgeEvent)>>,
    arrival: u64,
    routed: Vec<u64>,
}

impl ShardLanes {
    /// Empty lanes over `router`'s shards.
    pub fn new(router: ShardRouter) -> Self {
        let shards = router.shards();
        Self {
            router,
            lanes: vec![Vec::new(); shards],
            arrival: 0,
            routed: vec![0; shards],
        }
    }

    /// The router these lanes were built over.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Routes one mutation event to its owning shard's lane. Ticks are
    /// not admitted here — they are stream-global barriers handled by
    /// [`Self::seal`].
    ///
    /// # Panics
    /// Panics if `event` is [`EdgeEvent::Tick`].
    pub fn admit(&mut self, event: EdgeEvent) {
        let shard = self
            .router
            .route(&event)
            .expect("ticks are sealed, not admitted");
        let seq = self.arrival;
        self.arrival += 1;
        self.routed[shard] += 1;
        self.lanes[shard].push((seq, event));
    }

    /// Events currently buffered across all lanes.
    pub fn buffered(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Cumulative events routed to each shard since construction.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Clones the buffered lanes and counters into a checkpointable
    /// [`LanesState`].
    pub fn export_state(&self) -> LanesState {
        LanesState {
            lanes: self.lanes.clone(),
            arrival: self.arrival,
            routed: self.routed.clone(),
        }
    }

    /// Restores a previously exported [`LanesState`]. Fails (returning
    /// the state untouched) when its lane count does not match this
    /// router's shard count — recovering a checkpoint under a different
    /// shard topology would silently misroute the buffered events.
    pub fn import_state(&mut self, state: LanesState) -> Result<(), LanesState> {
        if state.lanes.len() != self.router.shards() || state.routed.len() != self.router.shards() {
            return Err(state);
        }
        self.lanes = state.lanes;
        self.arrival = state.arrival;
        self.routed = state.routed;
        Ok(())
    }

    /// Drains every lane and merges the buffered events back into global
    /// arrival order, counting cross-shard edges as it goes. Lanes are
    /// already arrival-sorted individually, so this is a k-way merge by
    /// sequence number.
    pub fn seal(&mut self) -> (Vec<EdgeEvent>, SealStats) {
        let mut tagged: Vec<(u64, EdgeEvent)> = Vec::with_capacity(self.buffered());
        for lane in &mut self.lanes {
            tagged.append(lane);
        }
        tagged.sort_unstable_by_key(|(seq, _)| *seq);
        let mut stats = SealStats {
            merged_events: tagged.len() as u64,
            cross_shard_edges: 0,
        };
        let merged: Vec<EdgeEvent> = tagged
            .into_iter()
            .map(|(_, e)| {
                if self.router.is_cross_shard(&e) {
                    stats.cross_shard_edges += 1;
                }
                e
            })
            .collect();
        (merged, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_event(universe: u32) -> BoxedStrategy<EdgeEvent> {
        prop_oneof![
            (0..universe, 0..universe).prop_map(|(src, dst)| EdgeEvent::AddEdge { src, dst }),
            (0..universe, 0..universe).prop_map(|(src, dst)| EdgeEvent::RemoveEdge { src, dst }),
            (0..universe).prop_map(|v| EdgeEvent::AddVertex { v }),
            (0..universe).prop_map(|v| EdgeEvent::RemoveVertex { v }),
            (0..universe).prop_map(|v| EdgeEvent::UpdateFeature {
                v,
                feature: vec![1.0, 2.0]
            }),
        ]
        .boxed()
    }

    #[test]
    fn hash_router_covers_every_shard_eventually() {
        let router = ShardRouter::hash(256, 4);
        let mut seen = [false; 4];
        for v in 0..256u32 {
            seen[router.shard_of(v)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 vertices must hit all 4 shards"
        );
    }

    #[test]
    fn single_shard_owns_everything() {
        let router = ShardRouter::hash(64, 1);
        assert!((0..64u32).all(|v| router.shard_of(v) == 0));
        assert!(!router.is_cross_shard(&EdgeEvent::AddEdge { src: 3, dst: 9 }));
    }

    #[test]
    fn degree_balanced_spreads_hubs() {
        // Four hub vertices with huge degree plus dust: LPT must place
        // the hubs on four distinct shards.
        let mut degrees = vec![1u64; 64];
        for hub in [0usize, 1, 2, 3] {
            degrees[hub] = 10_000;
        }
        let router = ShardRouter::degree_balanced(&degrees, 4);
        let mut hub_shards: Vec<usize> = (0..4u32).map(|v| router.shard_of(v)).collect();
        hub_shards.sort_unstable();
        assert_eq!(hub_shards, vec![0, 1, 2, 3]);
    }

    #[test]
    fn new_falls_back_to_hash_on_missing_or_mismatched_degrees() {
        let a = ShardRouter::new(ShardAssignment::DegreeBalanced, 32, 2, None);
        let b = ShardRouter::hash(32, 2);
        assert!((0..32u32).all(|v| a.shard_of(v) == b.shard_of(v)));
        let short = vec![1u64; 7];
        let c = ShardRouter::new(ShardAssignment::DegreeBalanced, 32, 2, Some(&short));
        assert!((0..32u32).all(|v| c.shard_of(v) == b.shard_of(v)));
    }

    #[test]
    fn seal_restores_arrival_order_and_counts_cross_shard() {
        let router = ShardRouter::hash(16, 4);
        let mut lanes = ShardLanes::new(router.clone());
        let events: Vec<EdgeEvent> = (0..16u32)
            .map(|i| EdgeEvent::AddEdge {
                src: i,
                dst: (i + 5) % 16,
            })
            .collect();
        let expect_cross = events.iter().filter(|e| router.is_cross_shard(e)).count() as u64;
        for e in &events {
            lanes.admit(e.clone());
        }
        assert_eq!(lanes.buffered(), 16);
        let (merged, stats) = lanes.seal();
        assert_eq!(merged, events, "seal must restore exact arrival order");
        assert_eq!(stats.merged_events, 16);
        assert_eq!(stats.cross_shard_edges, expect_cross);
        assert_eq!(lanes.buffered(), 0, "seal drains the lanes");
        assert_eq!(lanes.routed().iter().sum::<u64>(), 16);
    }

    #[test]
    fn lanes_state_round_trips_and_rejects_wrong_shard_count() {
        let router = ShardRouter::hash(16, 4);
        let mut lanes = ShardLanes::new(router.clone());
        let events: Vec<EdgeEvent> = (0..10u32)
            .map(|i| EdgeEvent::AddEdge {
                src: i,
                dst: (i + 3) % 16,
            })
            .collect();
        for e in &events[..7] {
            lanes.admit(e.clone());
        }
        let state = lanes.export_state();

        // A fresh lanes over the same router restored from the state must
        // behave exactly like the original from here on.
        let mut restored = ShardLanes::new(router);
        restored.import_state(state.clone()).expect("same topology");
        for e in &events[7..] {
            lanes.admit(e.clone());
            restored.admit(e.clone());
        }
        assert_eq!(lanes.seal(), restored.seal());
        assert_eq!(lanes.routed(), restored.routed());

        // Wrong shard count: refused, lanes untouched.
        let mut other = ShardLanes::new(ShardRouter::hash(16, 2));
        let rejected = other.import_state(state.clone()).unwrap_err();
        assert_eq!(rejected, state);
        assert_eq!(other.buffered(), 0);
    }

    proptest! {
        #[test]
        fn every_event_routes_to_exactly_one_shard(
            events in proptest::collection::vec(arbitrary_event(96), 0..64),
            shards in 1usize..=8,
        ) {
            let router = ShardRouter::hash(96, shards);
            for e in &events {
                let shard = router.route(e).expect("mutations always own a shard");
                prop_assert!(shard < shards);
                // Deterministic: routing the same event again lands on the
                // same shard, and an independently-built identical router
                // agrees.
                prop_assert_eq!(router.route(e), Some(shard));
                let again = ShardRouter::hash(96, shards);
                prop_assert_eq!(again.route(e), Some(shard));
            }
            prop_assert_eq!(router.route(&EdgeEvent::Tick), None);
        }

        #[test]
        fn seal_merge_is_order_preserving(
            events in proptest::collection::vec(arbitrary_event(96), 0..64),
            shards in 1usize..=8,
        ) {
            let mut lanes = ShardLanes::new(ShardRouter::hash(96, shards));
            for e in &events {
                lanes.admit(e.clone());
            }
            let (merged, stats) = lanes.seal();
            prop_assert_eq!(&merged, &events);
            prop_assert_eq!(stats.merged_events, events.len() as u64);
        }
    }
}
