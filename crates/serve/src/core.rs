//! The serving core: admission control, micro-batching, and the worker
//! pool.
//!
//! Requests enter through [`ServeCore::submit`], which performs
//! non-blocking admission into a bounded queue (full queue ⇒ typed
//! [`ServeError::Overloaded`], never unbounded memory). A single batcher
//! thread pops deadline-based micro-batches, feeds each stream's events
//! through its [`WindowRoller`], and fans completed windows out to the
//! worker pool. Streams shard to workers by `stream % workers` because a
//! stream's windows are sequentially dependent (the RNN state threads
//! through its [`EngineSession`]); distinct streams run concurrently.
//!
//! The batcher also runs the graceful-degradation controller: sustained
//! admission backlog widens the similarity-aware skip band (see
//! [`crate::degrade`]), trading fidelity for throughput, and unwinds when
//! the backlog clears. At zero backlog the served results are
//! bit-identical to an offline [`ConcurrentEngine::run`] over the same
//! stream — the property the integration suite pins down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tagnn_durable::checkpoint::CheckpointStore;
use tagnn_durable::wal::WalWriter;
use tagnn_graph::{CacheStats, PlanCache, PlanSource, WindowPlan, WindowPlanner};
use tagnn_models::{
    ConcurrentEngine, DgnnModel, EngineSession, EngineState, SkipConfig, StatefulModel,
};
use tagnn_obs::Recorder;
use tagnn_tensor::{DenseMatrix, DispatchMode, DispatchTally};

use crate::config::{DurabilityConfig, ServeConfig};
use crate::degrade::DegradationState;
use crate::error::ServeError;
use crate::event::EdgeEvent;
use crate::persist::{self, CheckpointBlob, ConfigStamp};
use crate::queue::{BoundedQueue, PushOutcome};
use crate::roller::{RolledWindow, ShardedRoller, ShardedRollerState, WindowRoller};
use crate::shard::ShardRouter;

/// One inference request: a slice of a stream's event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Logical stream the events belong to.
    pub stream: u64,
    /// Events, in stream order.
    pub events: Vec<EdgeEvent>,
    /// Flush sealed-but-unrolled snapshots as a short tail window after
    /// applying the events (stream end).
    pub flush: bool,
}

/// The outcome of one executed window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowResult {
    /// The stream the window belongs to.
    pub stream: u64,
    /// 0-based window index within the stream.
    pub seq: u64,
    /// Snapshots in the window (== K except for a flushed tail).
    pub snapshots: usize,
    /// FNV-1a digest over the final-feature matrices (bit-exact
    /// comparison handle for replay tests).
    pub digest: u64,
    /// Total MACs executed for the window.
    pub macs: u64,
    /// RNN cells skipped by the similarity filter.
    pub skipped_cells: u64,
    /// Where this window's plan came from: sealed incrementally by the
    /// stream's maintainer, served from the shared cache, or built from
    /// scratch by the worker.
    pub plan_source: PlanSource,
    /// Request-to-completion latency of this window in microseconds.
    pub latency_us: u64,
}

/// Reply to one [`InferRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Events admitted into the stream.
    pub accepted_events: usize,
    /// Windows the request completed, in roll order (often empty — most
    /// events just accumulate).
    pub windows: Vec<WindowResult>,
}

/// A claim on a future [`Reply`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Reply, ServeError>>,
}

impl Ticket {
    /// Blocks until the reply arrives ([`ServeError::Closed`] if the
    /// server shut down first).
    pub fn wait(self) -> Result<Reply, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Like [`Self::wait`], bounded by `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Reply, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }

    /// Non-blocking poll: `None` while the reply is still in flight.
    /// The event-loop frontend uses this to multiplex many tickets on
    /// one thread.
    pub fn try_wait(&self) -> Option<Result<Reply, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// FNV-1a over the raw f32 bits of `matrices` — the bit-exactness digest
/// used by replies, benches, and the replay tests.
pub fn digest_matrices<'a>(matrices: impl IntoIterator<Item = &'a DenseMatrix>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in matrices {
        for &x in m.as_slice() {
            for b in x.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Snapshot of the per-source plan counters since boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSourceCounts {
    /// Windows planned from scratch by a worker.
    pub scratch: u64,
    /// Windows served from the shared plan cache.
    pub cached: u64,
    /// Windows whose plan was sealed incrementally by the stream's
    /// maintainer.
    pub incremental: u64,
    /// Windows where incremental planning was enabled but the maintainer
    /// could not vouch for the plan (fell back to cache/scratch).
    pub fallbacks: u64,
}

/// Shared atomic backing of [`PlanSourceCounts`].
#[derive(Debug, Default)]
struct PlanCounters {
    scratch: AtomicU64,
    cached: AtomicU64,
    incremental: AtomicU64,
    fallbacks: AtomicU64,
}

impl PlanCounters {
    fn snapshot(&self) -> PlanSourceCounts {
        PlanSourceCounts {
            scratch: self.scratch.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of the shard plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Events routed to each shard's ingest lane since boot.
    pub routed: Vec<u64>,
    /// Edge events sealed whose endpoints live on different shards — the
    /// aggregation traffic a distributed deployment would pay at seal.
    pub cross_shard_edges: u64,
    /// Current depth of each shard's window queue.
    pub queue_depths: Vec<usize>,
}

/// Shared atomic backing of the kernel-dispatch counters: how often the
/// workers' engine sessions chose each kernel, plus the row-density sums
/// behind those choices (see `tagnn_tensor::dispatch`).
#[derive(Debug, Default)]
struct DispatchObs {
    dense: AtomicU64,
    spmm: AtomicU64,
    delta_skip: AtomicU64,
    nz_rows: AtomicU64,
    rows_seen: AtomicU64,
}

impl DispatchObs {
    fn add(&self, stats: &tagnn_models::ExecutionStats) {
        let d = &stats.dispatch;
        if d.dense > 0 {
            self.dense.fetch_add(d.dense, Ordering::Relaxed);
        }
        if d.spmm > 0 {
            self.spmm.fetch_add(d.spmm, Ordering::Relaxed);
        }
        if d.delta_skip > 0 {
            self.delta_skip.fetch_add(d.delta_skip, Ordering::Relaxed);
        }
        if stats.dispatch_rows_seen > 0 {
            self.nz_rows
                .fetch_add(stats.dispatch_nz_rows, Ordering::Relaxed);
            self.rows_seen
                .fetch_add(stats.dispatch_rows_seen, Ordering::Relaxed);
        }
    }

    fn tally(&self) -> DispatchTally {
        DispatchTally {
            dense: self.dense.load(Ordering::Relaxed),
            spmm: self.spmm.load(Ordering::Relaxed),
            delta_skip: self.delta_skip.load(Ordering::Relaxed),
        }
    }

    fn density(&self) -> f64 {
        let seen = self.rows_seen.load(Ordering::Relaxed);
        if seen == 0 {
            return 1.0;
        }
        self.nz_rows.load(Ordering::Relaxed) as f64 / seen as f64
    }
}

/// Shared atomic backing of [`ShardStats`].
#[derive(Debug)]
struct ShardObs {
    routed: Vec<AtomicU64>,
    cross_shard_edges: AtomicU64,
}

impl ShardObs {
    fn new(shards: usize) -> Self {
        Self {
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            cross_shard_edges: AtomicU64::new(0),
        }
    }
}

/// What recovery did at boot (only present when the core was started
/// with [`ServeConfig::durability`] set).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint restored (`None` on a cold
    /// start with no usable checkpoint).
    pub checkpoint_seq: Option<u64>,
    /// WAL-suffix requests replayed through normal ingestion.
    pub replayed_requests: u64,
    /// Events contained in the replayed requests.
    pub replayed_events: u64,
    /// Wall time of the replay phase in microseconds.
    pub replay_us: u64,
    /// Bytes truncated from torn/corrupt WAL tails across all shards.
    pub truncated_tail_bytes: u64,
    /// Per-stream tick position after recovery (checkpoint ticks plus
    /// replayed ticks), sorted by stream id — the resume cursor a
    /// trace-feeding client needs to continue where the crash cut it.
    pub resume_ticks: Vec<(u64, u64)>,
    /// Windows the WAL replay re-served, in replay order. Their replies
    /// went to the recovery path rather than any client, so this is the
    /// only place their digests surface — the crash differential needs
    /// them to prove the re-served bits match the original serve.
    pub replayed_windows: Vec<WindowResult>,
}

/// Point-in-time durability counters since boot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Whether durability is configured at all.
    pub enabled: bool,
    /// WAL records appended.
    pub wal_appends: u64,
    /// Group-commit fsyncs issued.
    pub wal_fsyncs: u64,
    /// Checkpoints written since boot.
    pub checkpoints_written: u64,
    /// Events replayed from the WAL at boot.
    pub replayed_events: u64,
    /// Replay wall time at boot in microseconds.
    pub replay_us: u64,
    /// WAL tail bytes truncated at boot.
    pub truncated_tail_bytes: u64,
}

/// Shared atomic backing of [`DurableStats`].
#[derive(Debug, Default)]
struct DurableObs {
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    checkpoints_written: AtomicU64,
    replayed_events: AtomicU64,
    replay_us: AtomicU64,
    truncated_tail_bytes: AtomicU64,
}

struct Job {
    req: InferRequest,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<Reply, ServeError>>,
    /// `false` for WAL-replayed requests: they were logged before the
    /// crash and must not be logged again.
    log: bool,
}

/// Book-keeping for a request whose windows are in flight: the reply is
/// sent by whichever worker completes the last window.
struct Pending {
    remaining: AtomicUsize,
    results: Mutex<Vec<Option<WindowResult>>>,
    reply: mpsc::Sender<Result<Reply, ServeError>>,
    accepted_events: usize,
}

struct WindowItem {
    stream: u64,
    window: RolledWindow,
    skip: SkipConfig,
    slot: usize,
    enqueued_at: Instant,
    pending: Arc<Pending>,
}

/// What flows through a shard's work queue: windows to execute, plus
/// checkpoint markers. A marker makes the worker serialize its sessions
/// *at that point in the queue* — i.e. after exactly the windows the
/// batcher had rolled when it cut the checkpoint — which is what makes
/// the assembled checkpoint a consistent image without stopping the
/// world.
enum WorkItem {
    Window(WindowItem),
    Checkpoint { seq: u64 },
}

/// The batcher's half of a checkpoint: everything it owns (rollers, WAL
/// offsets), captured synchronously when the checkpoint is cut.
struct CheckpointBegin {
    seq: u64,
    stamp: ConfigStamp,
    wal_offsets: Vec<u64>,
    windows_rolled: u64,
    rollers: Vec<(u64, ShardedRollerState)>,
}

/// Messages feeding the checkpoint-writer thread.
enum CkptMsg {
    Begin(Box<CheckpointBegin>),
    Sessions {
        seq: u64,
        parts: Vec<(u64, EngineState)>,
    },
}

/// The batcher's durable state: per-shard WAL writers plus the
/// checkpoint cadence bookkeeping.
struct BatcherDurable {
    wals: Vec<WalWriter>,
    cadence: u64,
    windows_rolled: u64,
    windows_at_ckpt: u64,
    next_seq: u64,
    stamp: ConfigStamp,
    tx: mpsc::Sender<CkptMsg>,
    in_flight: Arc<AtomicBool>,
}

/// Everything recovery hands the booting core: restored rollers for the
/// batcher, restored session states per worker, the batcher's durable
/// half, the checkpoint-writer handle, and the WAL suffix to replay.
#[derive(Default)]
struct DurableBoot {
    batcher: Option<BatcherDurable>,
    rollers: HashMap<u64, ShardedRoller>,
    sessions: Vec<HashMap<u64, EngineState>>,
    ckpt_tx: Option<mpsc::Sender<CkptMsg>>,
    writer: Option<JoinHandle<()>>,
    replay: Vec<InferRequest>,
    report: Option<RecoveryReport>,
}

/// Opens the WALs and checkpoint store, restores the latest valid
/// checkpoint, and stages the WAL suffix for replay. IO failures here
/// are boot-time operator errors (bad path, dead disk) and panic; data
/// corruption never does — torn tails truncate and bad checkpoints fall
/// back to older ones.
fn durable_bootstrap(
    dcfg: &DurabilityConfig,
    cfg: &ServeConfig,
    router: &ShardRouter,
    recorder: &Arc<Recorder>,
    obs: &Arc<DurableObs>,
) -> DurableBoot {
    std::fs::create_dir_all(&dcfg.dir).expect("create durability directory");
    let mut wals = Vec::with_capacity(cfg.shards);
    let mut recoveries = Vec::with_capacity(cfg.shards);
    let mut truncated = 0u64;
    for s in 0..cfg.shards {
        let path = dcfg.dir.join(format!("wal-{s}.log"));
        let (w, rec) = WalWriter::open(&path, dcfg.group_commit)
            .unwrap_or_else(|e| panic!("open WAL {}: {e}", path.display()));
        truncated += rec.truncated_bytes;
        wals.push(w);
        recoveries.push(rec);
    }
    let store =
        CheckpointStore::open(&dcfg.dir, dcfg.keep_checkpoints).expect("open checkpoint store");
    let stamp = ConfigStamp::of(cfg);
    let valid_lens: Vec<u64> = recoveries.iter().map(|r| r.valid_len).collect();
    // A checkpoint is usable when it decodes, was written under this
    // exact serving configuration, and every WAL offset it claims to
    // cover survived tail truncation. A stamp mismatch is an operator
    // error (resuming someone else's state would serve wrong bits), so
    // it panics rather than silently cold-starting; plain corruption
    // falls back to the next-older checkpoint.
    let ckpt = store
        .latest_valid(|c| match persist::decode_checkpoint(&c.payload) {
            Ok(blob) => {
                assert_eq!(
                    blob.stamp,
                    stamp,
                    "durability dir {} holds checkpoints from a different serving \
                     configuration; wipe it or restore the original config",
                    dcfg.dir.display()
                );
                blob.wal_offsets.len() == valid_lens.len()
                    && blob
                        .wal_offsets
                        .iter()
                        .zip(&valid_lens)
                        .all(|(o, l)| o <= l)
            }
            Err(_) => false,
        })
        .expect("scan checkpoints");
    let next_seq = store
        .list()
        .expect("list checkpoints")
        .last()
        .map_or(0, |s| s + 1);

    let mut rollers = HashMap::new();
    let mut sessions: Vec<HashMap<u64, EngineState>> =
        (0..cfg.shards).map(|_| HashMap::new()).collect();
    let mut offsets = vec![0u64; cfg.shards];
    let mut checkpoint_seq = None;
    let mut resume: HashMap<u64, u64> = HashMap::new();
    let mut windows_rolled = 0;
    if let Some(c) = ckpt {
        let blob = persist::decode_checkpoint(&c.payload)
            .expect("checkpoint accepted by the validity scan decodes");
        checkpoint_seq = Some(c.seq);
        offsets = blob.wal_offsets;
        windows_rolled = blob.windows_rolled;
        for (stream, state) in blob.rollers {
            resume.insert(stream, state.inner.ticks);
            let r = ShardedRoller::from_state(state, router.clone())
                .expect("CRC-valid checkpoint roller state matches the config stamp");
            rollers.insert(stream, r);
        }
        for (stream, st) in blob.sessions {
            let shard = (stream % cfg.shards as u64) as usize;
            sessions[shard].insert(stream, st);
        }
    }

    // Stage the WAL suffix: every record past the checkpoint's covered
    // offset, in file order (per-stream order, since a stream maps to
    // exactly one WAL and the batcher is single-threaded).
    let mut replay = Vec::new();
    let mut replayed_events = 0u64;
    for (s, rec) in recoveries.iter().enumerate() {
        for record in &rec.records {
            if record.end_offset <= offsets[s] {
                continue;
            }
            match persist::decode_request(&record.payload) {
                Ok(req) => {
                    replayed_events += req.events.len() as u64;
                    let ticks = req
                        .events
                        .iter()
                        .filter(|e| matches!(e, EdgeEvent::Tick))
                        .count() as u64;
                    *resume.entry(req.stream).or_insert(0) += ticks;
                    replay.push(req);
                }
                Err(_) => recorder.incr("serve.recovery.undecodable_records", 1),
            }
        }
    }

    obs.truncated_tail_bytes.store(truncated, Ordering::Relaxed);
    obs.replayed_events
        .store(replayed_events, Ordering::Relaxed);
    recorder.incr("serve.recovery.truncated_tail_bytes", truncated);
    recorder.incr("serve.recovery.replayed_events", replayed_events);

    let in_flight = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<CkptMsg>();
    let writer = {
        let recorder = Arc::clone(recorder);
        let obs = Arc::clone(obs);
        let in_flight = Arc::clone(&in_flight);
        let shards = cfg.shards;
        std::thread::Builder::new()
            .name("tagnn-serve-ckpt".into())
            .spawn(move || ckpt_writer_loop(rx, store, shards, recorder, obs, in_flight))
            .expect("spawn checkpoint writer")
    };

    let mut resume_ticks: Vec<(u64, u64)> = resume.into_iter().collect();
    resume_ticks.sort_unstable_by_key(|(stream, _)| *stream);
    DurableBoot {
        batcher: Some(BatcherDurable {
            wals,
            cadence: dcfg.checkpoint_every_windows,
            windows_rolled,
            windows_at_ckpt: windows_rolled,
            next_seq,
            stamp,
            tx: tx.clone(),
            in_flight,
        }),
        rollers,
        sessions,
        ckpt_tx: Some(tx),
        writer: Some(writer),
        report: Some(RecoveryReport {
            checkpoint_seq,
            replayed_requests: replay.len() as u64,
            replayed_events,
            replay_us: 0,
            truncated_tail_bytes: truncated,
            resume_ticks,
            replayed_windows: Vec::new(),
        }),
        replay,
    }
}

/// Assembles checkpoints from the batcher's Begin and the workers'
/// Sessions parts and writes each one atomically once all `shards`
/// parts have arrived. Exits when every sender is gone (batcher and
/// workers have shut down); an incomplete checkpoint at that point is
/// simply discarded — the previous one stays latest.
fn ckpt_writer_loop(
    rx: mpsc::Receiver<CkptMsg>,
    store: CheckpointStore,
    shards: usize,
    recorder: Arc<Recorder>,
    obs: Arc<DurableObs>,
    in_flight: Arc<AtomicBool>,
) {
    let mut begin: Option<CheckpointBegin> = None;
    let mut parts: Vec<(u64, EngineState)> = Vec::new();
    let mut arrived = 0usize;
    while let Ok(msg) = rx.recv() {
        match msg {
            CkptMsg::Begin(b) => {
                begin = Some(*b);
                parts.clear();
                arrived = 0;
            }
            CkptMsg::Sessions { seq, parts: p } => {
                let Some(b) = &begin else { continue };
                if b.seq != seq {
                    continue;
                }
                parts.extend(p);
                arrived += 1;
                if arrived < shards {
                    continue;
                }
                let b = begin.take().expect("begin present");
                let seq = b.seq;
                parts.sort_unstable_by_key(|(stream, _)| *stream);
                let blob = CheckpointBlob {
                    stamp: b.stamp,
                    wal_offsets: b.wal_offsets,
                    windows_rolled: b.windows_rolled,
                    rollers: b.rollers,
                    sessions: std::mem::take(&mut parts),
                };
                let t0 = Instant::now();
                let payload = persist::encode_checkpoint(&blob);
                match store.write(seq, &payload) {
                    Ok(()) => {
                        obs.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                        recorder.incr("serve.checkpoints", 1);
                        recorder.record("serve.checkpoint_bytes", payload.len() as u64);
                        recorder.record("serve.checkpoint_us", t0.elapsed().as_micros() as u64);
                    }
                    Err(e) => {
                        recorder.incr("serve.checkpoint_errors", 1);
                        eprintln!("tagnn-serve: checkpoint {seq} write failed: {e}");
                    }
                }
                in_flight.store(false, Ordering::Release);
            }
        }
    }
}

/// The in-process serving engine (the TCP frontend in [`crate::server`]
/// is a thin wire adapter over this).
pub struct ServeCore {
    cfg: ServeConfig,
    admission: Arc<BoundedQueue<Job>>,
    worker_queues: Vec<Arc<BoundedQueue<WorkItem>>>,
    recorder: Arc<Recorder>,
    cache: Arc<PlanCache>,
    plan_counters: Arc<PlanCounters>,
    shard_obs: Arc<ShardObs>,
    dispatch_obs: Arc<DispatchObs>,
    shed: Arc<AtomicU64>,
    degrade_level: Arc<AtomicU32>,
    max_degrade_level: Arc<AtomicU32>,
    durable_obs: Arc<DurableObs>,
    recovery: Option<RecoveryReport>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ckpt_writer: Option<JoinHandle<()>>,
}

impl ServeCore {
    /// Boots the core: model weights, plan cache, batcher, and worker
    /// pool. When [`ServeConfig::durability`] is set, recovery runs
    /// first — the latest valid checkpoint is restored and the WAL
    /// suffix is replayed through normal ingestion — and `start` returns
    /// only once the core has caught up to the pre-crash stream
    /// positions. Returns once every thread is running.
    pub fn start(cfg: ServeConfig) -> Self {
        let cfg = cfg.validated();
        let recorder = Arc::new(Recorder::new());
        let cache = Arc::new(PlanCache::with_capacity(cfg.plan_cache_capacity));
        let admission = Arc::new(BoundedQueue::<Job>::new(cfg.queue_capacity));
        let plan_counters = Arc::new(PlanCounters::default());
        let shard_obs = Arc::new(ShardObs::new(cfg.shards));
        let dispatch_obs = Arc::new(DispatchObs::default());
        let durable_obs = Arc::new(DurableObs::default());
        let shed = Arc::new(AtomicU64::new(0));
        let degrade_level = Arc::new(AtomicU32::new(0));
        let max_degrade_level = Arc::new(AtomicU32::new(0));

        let model = DgnnModel::new(cfg.model, cfg.feature_dim, cfg.hidden, cfg.seed);
        let engine = ConcurrentEngine::with_options(model, cfg.skip, cfg.window, cfg.reuse)
            .with_dispatch_mode(cfg.dispatch);

        let router = ShardRouter::new(
            cfg.shard_assignment,
            cfg.universe,
            cfg.shards,
            cfg.degree_profile.as_deref(),
        );

        let mut boot = match &cfg.durability {
            Some(dcfg) => durable_bootstrap(dcfg, &cfg, &router, &recorder, &durable_obs),
            None => DurableBoot::default(),
        };
        if boot.sessions.len() != cfg.shards {
            boot.sessions = (0..cfg.shards).map(|_| HashMap::new()).collect();
        }

        let worker_queues: Vec<Arc<BoundedQueue<WorkItem>>> = (0..cfg.shards)
            .map(|_| Arc::new(BoundedQueue::new(cfg.worker_queue_capacity)))
            .collect();

        let mut initial_sessions = std::mem::take(&mut boot.sessions);
        let workers: Vec<JoinHandle<()>> = worker_queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let q = Arc::clone(q);
                let engine = engine.clone();
                let cache = Arc::clone(&cache);
                let recorder = Arc::clone(&recorder);
                let counters = Arc::clone(&plan_counters);
                let dispatch_obs = Arc::clone(&dispatch_obs);
                let ckpt_tx = boot.ckpt_tx.clone();
                let initial = std::mem::take(&mut initial_sessions[i]);
                let universe = cfg.universe;
                let window = cfg.window;
                let incremental = cfg.incremental_planning;
                let overlap = cfg.overlap;
                let lookahead = cfg.lookahead;
                std::thread::Builder::new()
                    .name(format!("tagnn-serve-shard-{i}"))
                    .spawn(move || {
                        worker_loop(
                            WorkerCtx {
                                queue: &q,
                                engine: &engine,
                                cache: &cache,
                                recorder: &recorder,
                                counters: &counters,
                                dispatch_obs: &dispatch_obs,
                                ckpt_tx,
                                universe,
                                window,
                                incremental,
                                overlap,
                                lookahead,
                            },
                            initial,
                        )
                    })
                    .expect("spawn worker")
            })
            .collect();

        let batcher = {
            let admission = Arc::clone(&admission);
            let queues = worker_queues.clone();
            let recorder = Arc::clone(&recorder);
            let cfg2 = cfg.clone();
            let degrade_level = Arc::clone(&degrade_level);
            let max_degrade_level = Arc::clone(&max_degrade_level);
            let router = router.clone();
            let shard_obs2 = Arc::clone(&shard_obs);
            let durable_obs2 = Arc::clone(&durable_obs);
            let rollers = std::mem::take(&mut boot.rollers);
            let durable = boot.batcher.take();
            std::thread::Builder::new()
                .name("tagnn-serve-batcher".into())
                .spawn(move || {
                    batcher_loop(
                        BatcherCtx {
                            admission: &admission,
                            queues: &queues,
                            recorder: &recorder,
                            cfg: &cfg2,
                            degrade_level: &degrade_level,
                            max_degrade_level: &max_degrade_level,
                            router: &router,
                            shard_obs: &shard_obs2,
                            durable_obs: &durable_obs2,
                        },
                        rollers,
                        durable,
                    )
                })
                .expect("spawn batcher")
        };

        let mut core = Self {
            cfg,
            admission,
            worker_queues,
            recorder,
            cache,
            plan_counters,
            shard_obs,
            dispatch_obs,
            shed,
            degrade_level,
            max_degrade_level,
            durable_obs,
            recovery: None,
            batcher: Some(batcher),
            workers,
            ckpt_writer: boot.writer.take(),
        };

        if let Some(mut report) = boot.report.take() {
            // Replay the WAL suffix through the normal ingestion path,
            // one request outstanding at a time (bounded memory, FIFO
            // order). Rejections are counted, not fatal: a record that
            // was admissible pre-crash stays admissible after a faithful
            // state restore, so a rejection here indicates operator
            // tampering — the remaining stream must still come up.
            let t0 = Instant::now();
            for req in boot.replay.drain(..) {
                match core.submit_job(req, false) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(reply) => report.replayed_windows.extend(reply.windows),
                        Err(_) => core.recorder.incr("serve.recovery.rejected_requests", 1),
                    },
                    Err(_) => core.recorder.incr("serve.recovery.rejected_requests", 1),
                }
            }
            report.replay_us = t0.elapsed().as_micros() as u64;
            core.durable_obs
                .replay_us
                .store(report.replay_us, Ordering::Relaxed);
            core.recorder
                .incr("serve.recovery.replay_us", report.replay_us);
            core.recovery = Some(report);
        }
        core
    }

    /// The configuration the core was booted with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The recorder collecting `serve.*` counters and latency histograms.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Plan-cache counters (hits/misses/evictions) since boot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-source plan counters (scratch / cached / incremental, plus
    /// incremental fallbacks) since boot.
    pub fn plan_source_counts(&self) -> PlanSourceCounts {
        self.plan_counters.snapshot()
    }

    /// Kernel-dispatch decisions the workers' engine sessions made since
    /// boot: dense GEMMs, row-sparse SpMMs, and delta-skip cells.
    pub fn dispatch_counts(&self) -> DispatchTally {
        self.dispatch_obs.tally()
    }

    /// Mean measured row density of the dispatch-measured operands
    /// since boot (1.0 when nothing was measured — e.g. `dense` mode).
    pub fn dispatch_density(&self) -> f64 {
        self.dispatch_obs.density()
    }

    /// Requests shed at admission since boot.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Per-shard routing/seal counters and live queue depths.
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            routed: self
                .shard_obs
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cross_shard_edges: self.shard_obs.cross_shard_edges.load(Ordering::Relaxed),
            queue_depths: self.worker_queues.iter().map(|q| q.depth()).collect(),
        }
    }

    /// Current depth of the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.admission.depth()
    }

    /// The degradation level the batcher is currently applying.
    pub fn degrade_level(&self) -> u32 {
        self.degrade_level.load(Ordering::Relaxed)
    }

    /// The highest degradation level reached since boot.
    pub fn max_degrade_level(&self) -> u32 {
        self.max_degrade_level.load(Ordering::Relaxed)
    }

    /// What recovery did at boot; `None` unless the core was started
    /// with durability configured.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Durability counters (WAL appends/fsyncs, checkpoints, replay cost)
    /// since boot. `enabled` is false when durability is off.
    pub fn durable_stats(&self) -> DurableStats {
        DurableStats {
            enabled: self.cfg.durability.is_some(),
            wal_appends: self.durable_obs.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.durable_obs.wal_fsyncs.load(Ordering::Relaxed),
            checkpoints_written: self.durable_obs.checkpoints_written.load(Ordering::Relaxed),
            replayed_events: self.durable_obs.replayed_events.load(Ordering::Relaxed),
            replay_us: self.durable_obs.replay_us.load(Ordering::Relaxed),
            truncated_tail_bytes: self
                .durable_obs
                .truncated_tail_bytes
                .load(Ordering::Relaxed),
        }
    }

    /// Non-blocking admission. `Err(Overloaded)` when the queue is full;
    /// the caller decides whether to retry, backpressure, or drop.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        self.submit_job(req, true)
    }

    fn submit_job(&self, req: InferRequest, log: bool) -> Result<Ticket, ServeError> {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            enqueued_at: Instant::now(),
            reply: tx,
            log,
        };
        match self.admission.try_push(job) {
            (PushOutcome::Queued { .. }, None) => {
                self.recorder.incr("serve.requests", 1);
                Ok(Ticket { rx })
            }
            (PushOutcome::Full, Some(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                self.recorder.incr("serve.shed", 1);
                Err(ServeError::Overloaded {
                    depth: self.admission.depth(),
                    capacity: self.admission.capacity(),
                })
            }
            _ => Err(ServeError::Closed),
        }
    }

    /// Graceful shutdown: stops admission, drains every queue, and joins
    /// all threads. In-flight requests complete; late `submit`s get
    /// [`ServeError::Closed`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.admission.close();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for q in &self.worker_queues {
            q.close();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The checkpoint writer exits once every CkptMsg sender is gone
        // (batcher + workers above), so this join cannot hang.
        if let Some(h) = self.ckpt_writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

struct BatcherCtx<'a> {
    admission: &'a BoundedQueue<Job>,
    queues: &'a [Arc<BoundedQueue<WorkItem>>],
    recorder: &'a Recorder,
    cfg: &'a ServeConfig,
    degrade_level: &'a AtomicU32,
    max_degrade_level: &'a AtomicU32,
    router: &'a ShardRouter,
    shard_obs: &'a ShardObs,
    durable_obs: &'a DurableObs,
}

fn batcher_loop(
    ctx: BatcherCtx<'_>,
    mut rollers: HashMap<u64, ShardedRoller>,
    mut durable: Option<BatcherDurable>,
) {
    let mut degrade = DegradationState::default();
    let max_delay = Duration::from_micros(ctx.cfg.max_delay_us);
    // Per-shard metric names, built once (the recorder keys by &str).
    let depth_gauges: Vec<String> = (0..ctx.cfg.shards)
        .map(|s| format!("serve.shard{s}.queue_depth"))
        .collect();
    loop {
        let batch = ctx.admission.pop_batch(ctx.cfg.max_batch, max_delay);
        if batch.is_empty() {
            // pop_batch returns empty only when closed and drained. Make
            // every appended-but-unsynced WAL byte durable before the
            // core reports a clean shutdown.
            if let Some(d) = &mut durable {
                for wal in &mut d.wals {
                    let _ = wal.sync();
                }
            }
            return;
        }
        ctx.recorder.record("serve.batch_size", batch.len() as u64);

        // The backlog left AFTER taking this batch is the overload
        // signal: it stays high only when arrivals outpace service.
        let level = degrade.observe(ctx.admission.depth(), &ctx.cfg.degradation);
        ctx.degrade_level.store(level, Ordering::Relaxed);
        ctx.max_degrade_level
            .store(degrade.max_level_seen(), Ordering::Relaxed);
        ctx.recorder.gauge("serve.degrade_level", level as f64);
        for (s, q) in ctx.queues.iter().enumerate() {
            ctx.recorder.gauge(&depth_gauges[s], q.depth() as f64);
        }
        let skip = degrade.skip_config(ctx.cfg.skip, &ctx.cfg.degradation);

        for job in batch {
            dispatch_job(&ctx, job, &mut rollers, skip, &mut durable);
        }

        if let Some(d) = &mut durable {
            maybe_cut_checkpoint(&ctx, d, &rollers);
        }
    }
}

/// Cuts a checkpoint when the cadence says so and none is in flight:
/// syncs the WALs (the captured offsets must be durable — the checkpoint
/// claims to cover everything before them), exports the rollers, hands
/// the batcher's half to the writer thread, and drops a marker into
/// every shard queue so the workers serialize their sessions at the
/// matching point in the work stream.
fn maybe_cut_checkpoint(
    ctx: &BatcherCtx<'_>,
    d: &mut BatcherDurable,
    rollers: &HashMap<u64, ShardedRoller>,
) {
    if d.windows_rolled - d.windows_at_ckpt < d.cadence || d.in_flight.swap(true, Ordering::AcqRel)
    {
        return;
    }
    d.windows_at_ckpt = d.windows_rolled;
    let mut wal_offsets = Vec::with_capacity(d.wals.len());
    for wal in &mut d.wals {
        if let Err(e) = wal.sync() {
            ctx.recorder.incr("serve.wal.sync_errors", 1);
            eprintln!("tagnn-serve: checkpoint aborted, WAL sync failed: {e}");
            d.in_flight.store(false, Ordering::Release);
            return;
        }
        wal_offsets.push(wal.offset());
    }
    let seq = d.next_seq;
    d.next_seq += 1;
    let mut exported: Vec<(u64, ShardedRollerState)> = rollers
        .iter()
        .map(|(&stream, r)| (stream, r.export_state()))
        .collect();
    exported.sort_unstable_by_key(|(stream, _)| *stream);
    let begin = CheckpointBegin {
        seq,
        stamp: d.stamp.clone(),
        wal_offsets,
        windows_rolled: d.windows_rolled,
        rollers: exported,
    };
    if d.tx.send(CkptMsg::Begin(Box::new(begin))).is_err() {
        d.in_flight.store(false, Ordering::Release);
        return;
    }
    for q in ctx.queues {
        if q.push(WorkItem::Checkpoint { seq }).is_err() {
            // A closed queue means shutdown: the writer will never see
            // all parts for this seq and discards it on exit.
            return;
        }
    }
}

/// Runs one job's events through its stream's sharded roller and fans the
/// rolled windows out to the shard workers.
fn dispatch_job(
    ctx: &BatcherCtx<'_>,
    job: Job,
    rollers: &mut HashMap<u64, ShardedRoller>,
    skip: SkipConfig,
    durable: &mut Option<BatcherDurable>,
) {
    let cfg = ctx.cfg;
    let recorder = ctx.recorder;
    // Atomic rejection: a request with any invalid event is refused as a
    // unit, before the stream state is touched.
    for event in &job.req.events {
        if let Err(e) = event.validate(cfg.universe, cfg.feature_dim) {
            recorder.incr("serve.rejected", 1);
            let _ = job.reply.send(Err(ServeError::Rejected(e)));
            return;
        }
    }

    // Log before apply: once the request mutates roller state it must be
    // recoverable. Whole requests are the WAL unit (atomic with the
    // rejection above — a logged record is always fully applicable), and
    // a stream's records all land in one WAL (`stream % shards`, the
    // same mapping as execution stickiness), so per-stream replay order
    // is the file order. Replayed jobs (`log == false`) are already on
    // disk and are not logged twice.
    if let Some(d) = durable {
        if job.log && (!job.req.events.is_empty() || job.req.flush) {
            let shard = (job.req.stream % d.wals.len() as u64) as usize;
            let payload = persist::encode_request(&job.req);
            match d.wals[shard].append(&payload) {
                Ok(fsync) => {
                    ctx.durable_obs.wal_appends.fetch_add(1, Ordering::Relaxed);
                    recorder.incr("serve.wal.appends", 1);
                    if let Some(took) = fsync {
                        ctx.durable_obs.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                        recorder.record("serve.wal.fsync_us", took.as_micros() as u64);
                    }
                }
                Err(e) => {
                    recorder.incr("serve.wal.append_errors", 1);
                    let _ = job
                        .reply
                        .send(Err(ServeError::Durability(format!("WAL append: {e}"))));
                    return;
                }
            }
        }
    }

    let roller = rollers.entry(job.req.stream).or_insert_with(|| {
        let r = WindowRoller::new(cfg.universe, cfg.feature_dim, cfg.window);
        let r = if cfg.incremental_planning {
            r.with_incremental_planning()
        } else {
            r
        };
        ShardedRoller::new(r, ctx.router.clone())
    });
    // The lanes keep cumulative routing/seal totals; harvest the delta
    // this job contributes into the shared shard counters afterwards.
    let routed_before: Vec<u64> = roller.routed().to_vec();
    let seal_before = roller.seal_totals();
    let mut windows = Vec::new();
    let mut failed = None;
    for event in &job.req.events {
        match roller.apply(event) {
            Ok(Some(w)) => windows.push(w),
            Ok(None) => {}
            Err(e) => {
                // Unreachable after pre-validation, but a tick error must
                // still produce a typed reply rather than a dead ticket.
                failed = Some(e);
                break;
            }
        }
    }
    if failed.is_none() && job.req.flush {
        match roller.flush() {
            Ok(Some(w)) => windows.push(w),
            Ok(None) => {}
            Err(e) => failed = Some(e),
        }
    }
    for (s, (after, before)) in roller.routed().iter().zip(&routed_before).enumerate() {
        ctx.shard_obs.routed[s].fetch_add(after - before, Ordering::Relaxed);
    }
    let cross_delta = roller.seal_totals().cross_shard_edges - seal_before.cross_shard_edges;
    if cross_delta > 0 {
        ctx.shard_obs
            .cross_shard_edges
            .fetch_add(cross_delta, Ordering::Relaxed);
        recorder.incr("serve.shard.cross_seal_edges", cross_delta);
    }
    if let Some(e) = failed {
        recorder.incr("serve.rejected", 1);
        let _ = job.reply.send(Err(ServeError::Rejected(e)));
        return;
    }

    let accepted_events = job.req.events.len();
    if windows.is_empty() {
        let _ = job.reply.send(Ok(Reply {
            accepted_events,
            windows: Vec::new(),
        }));
        return;
    }

    recorder.incr("serve.windows", windows.len() as u64);
    if let Some(d) = durable {
        d.windows_rolled += windows.len() as u64;
    }
    let pending = Arc::new(Pending {
        remaining: AtomicUsize::new(windows.len()),
        results: Mutex::new(vec![None; windows.len()]),
        reply: job.reply,
        accepted_events,
    });
    // Execution stays sticky per stream (a stream's windows thread RNN
    // state through one EngineSession); the vertex-owner sharding above
    // governs admission routing and seal accounting.
    let shard = (job.req.stream % ctx.queues.len() as u64) as usize;
    for (slot, window) in windows.into_iter().enumerate() {
        let item = WorkItem::Window(WindowItem {
            stream: job.req.stream,
            window,
            skip,
            slot,
            enqueued_at: job.enqueued_at,
            pending: Arc::clone(&pending),
        });
        // Blocking push: worker backlog stalls the batcher, which fills
        // the admission queue, which sheds — backpressure end to end.
        if ctx.queues[shard].push(item).is_err() {
            let _ = pending.reply.send(Err(ServeError::Closed));
            return;
        }
    }
}

struct WorkerCtx<'a> {
    queue: &'a BoundedQueue<WorkItem>,
    engine: &'a ConcurrentEngine,
    cache: &'a PlanCache,
    recorder: &'a Recorder,
    counters: &'a PlanCounters,
    dispatch_obs: &'a DispatchObs,
    ckpt_tx: Option<mpsc::Sender<CkptMsg>>,
    universe: usize,
    window: usize,
    incremental: bool,
    overlap: bool,
    lookahead: usize,
}

/// Obtains the plan for one rolled window: the incrementally sealed plan
/// when the roller's maintainer vouched for one, else the shared cache,
/// else a from-scratch build (inserted for the next identical window).
/// `serve.plan_build_us` records the plan work actually done on this
/// window (seal or scratch build; a cache hit does none).
fn obtain_plan(
    ctx: &WorkerCtx<'_>,
    item: &WindowItem,
    planner: &WindowPlanner,
) -> (Arc<WindowPlan>, PlanSource) {
    if let Some(sealed) = &item.window.plan {
        ctx.counters.incremental.fetch_add(1, Ordering::Relaxed);
        ctx.recorder
            .record("serve.plan_build_us", sealed.stats().build_ns / 1_000);
        return (Arc::clone(sealed), PlanSource::Incremental);
    }
    if ctx.incremental {
        // The maintainer was enabled but could not vouch for this window.
        ctx.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        ctx.recorder.incr("serve.plan_incremental_fallbacks", 1);
    }
    let key = (item.window.graph.fingerprint(), 0, ctx.window);
    if let Some(hit) = ctx.cache.get(&key) {
        ctx.counters.cached.fetch_add(1, Ordering::Relaxed);
        return (hit, PlanSource::Cached);
    }
    let refs: Vec<&_> = item.window.graph.snapshots().iter().collect();
    let plan = Arc::new(planner.plan_window(&refs, 0));
    ctx.counters.scratch.fetch_add(1, Ordering::Relaxed);
    ctx.recorder
        .record("serve.plan_build_us", plan.stats().build_ns / 1_000);
    ctx.cache.insert(key, Arc::clone(&plan));
    (plan, PlanSource::Scratch)
}

/// Ships this worker's half of checkpoint `seq` to the writer thread:
/// every live session's exported state, plus the restored-but-untouched
/// states still parked in `initial` (their streams exist durably even if
/// no window arrived for them since boot).
fn emit_sessions(
    ctx: &WorkerCtx<'_>,
    sessions: &HashMap<u64, EngineSession>,
    initial: &HashMap<u64, EngineState>,
    seq: u64,
) {
    let Some(tx) = &ctx.ckpt_tx else { return };
    let mut parts: Vec<(u64, EngineState)> = sessions
        .iter()
        .map(|(&stream, s)| (stream, s.export_state()))
        .collect();
    parts.extend(initial.iter().map(|(&stream, st)| (stream, st.clone())));
    parts.sort_unstable_by_key(|(stream, _)| *stream);
    let _ = tx.send(CkptMsg::Sessions { seq, parts });
}

fn worker_loop(ctx: WorkerCtx<'_>, mut initial: HashMap<u64, EngineState>) {
    let planner = WindowPlanner::new(ctx.window);
    let mut sessions: HashMap<u64, EngineSession> = HashMap::new();
    if !ctx.overlap {
        while let Some(item) = ctx.queue.pop() {
            match item {
                WorkItem::Window(item) => {
                    let (plan, plan_source) = obtain_plan(&ctx, &item, &planner);
                    execute_item(
                        &ctx,
                        &mut sessions,
                        &mut initial,
                        item,
                        &plan,
                        plan_source,
                        None,
                    );
                }
                WorkItem::Checkpoint { seq } => emit_sessions(&ctx, &sessions, &initial, seq),
            }
        }
        return;
    }

    // Overlap mode: a plan sidecar stages (plan, density prefetch) for
    // up to `lookahead` windows ahead of the execute thread — the
    // serving analogue of the engine's ping-pong prefetch. The sidecar
    // pops the shard queue (preserving per-stream FIFO: one sidecar, one
    // ordered channel), does the plan acquisition and the nonzero-row
    // scan there, and the bounded channel is the backpressure. Shutdown
    // drains naturally: queue close → sidecar exits → sender drops →
    // executor's recv errors out.
    let auto = ctx.engine.dispatcher().mode() == DispatchMode::Auto;
    enum Staged {
        Window(WindowItem, Arc<WindowPlan>, PlanSource, Option<Vec<u32>>),
        Checkpoint(u64),
    }
    let (tx, rx) = mpsc::sync_channel::<Staged>(ctx.lookahead);
    std::thread::scope(|scope| {
        let sidecar_ctx = &ctx;
        scope.spawn(move || {
            if tagnn_tensor::pinning_enabled() {
                // Best effort: the highest core, away from compute
                // workers pinned from core 0 upward.
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                let _ = tagnn_tensor::pin_current_thread(cores - 1);
            }
            while let Some(item) = sidecar_ctx.queue.pop() {
                // Checkpoint markers ride the same ordered channel, so
                // the executor still sees them at their queue position.
                let item = match item {
                    WorkItem::Window(item) => item,
                    WorkItem::Checkpoint { seq } => {
                        if tx.send(Staged::Checkpoint(seq)).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let (plan, plan_source) = obtain_plan(sidecar_ctx, &item, &planner);
                let nz = auto.then(|| {
                    let snap0 = &item.window.graph.snapshots()[0];
                    let n = snap0.num_vertices();
                    let mut rows = Vec::with_capacity(n);
                    for v in 0..n {
                        if snap0.features().row(v).iter().any(|&x| x != 0.0) {
                            rows.push(v as u32);
                        }
                    }
                    rows
                });
                if tx
                    .send(Staged::Window(item, plan, plan_source, nz))
                    .is_err()
                {
                    return;
                }
            }
        });
        while let Ok(staged) = rx.recv() {
            match staged {
                Staged::Window(item, plan, plan_source, nz) => execute_item(
                    &ctx,
                    &mut sessions,
                    &mut initial,
                    item,
                    &plan,
                    plan_source,
                    nz.as_deref(),
                ),
                Staged::Checkpoint(seq) => emit_sessions(&ctx, &sessions, &initial, seq),
            }
        }
    });
}

/// Executes one staged window on its stream's session and completes the
/// request when this was its last outstanding window. `nz_rows` is the
/// sidecar's prefetched dispatch measurement (overlap mode only).
fn execute_item(
    ctx: &WorkerCtx<'_>,
    sessions: &mut HashMap<u64, EngineSession>,
    initial: &mut HashMap<u64, EngineState>,
    item: WindowItem,
    plan: &WindowPlan,
    plan_source: PlanSource,
    nz_rows: Option<&[u32]>,
) {
    {
        let session = sessions.entry(item.stream).or_insert_with(|| {
            let mut s = ctx.engine.session(ctx.universe);
            // Lazy restore: a checkpointed stream's RNN state is parked
            // until its first post-recovery window shows up here.
            if let Some(state) = initial.remove(&item.stream) {
                s.import_state(state)
                    .expect("checkpoint session state was exported under this config");
            }
            s
        });
        let refs: Vec<&_> = item.window.graph.snapshots().iter().collect();
        let out = session.process_window_prefetched(&refs, plan, item.skip, nz_rows);

        ctx.dispatch_obs.add(&out.stats);
        let d = &out.stats.dispatch;
        if d.dense > 0 {
            ctx.recorder.incr("serve.kernel.dispatch.dense", d.dense);
        }
        if d.spmm > 0 {
            ctx.recorder.incr("serve.kernel.dispatch.spmm", d.spmm);
        }
        if d.delta_skip > 0 {
            ctx.recorder
                .incr("serve.kernel.dispatch.delta_skip", d.delta_skip);
        }
        ctx.recorder
            .gauge("serve.kernel.input_density", ctx.dispatch_obs.density());

        let latency_us = item.enqueued_at.elapsed().as_micros() as u64;
        ctx.recorder.record("serve.window_latency_us", latency_us);
        let result = WindowResult {
            stream: item.stream,
            seq: item.window.seq,
            snapshots: item.window.graph.num_snapshots(),
            digest: digest_matrices(&out.final_features),
            macs: out.stats.gnn_aggregate_macs + out.stats.gnn_combine_macs + out.stats.rnn_macs,
            skipped_cells: out.stats.skip.skipped,
            plan_source,
            latency_us,
        };

        let pending = item.pending;
        pending.results.lock().unwrap()[item.slot] = Some(result);
        if pending.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let results = std::mem::take(&mut *pending.results.lock().unwrap());
            let windows: Vec<WindowResult> = results
                .into_iter()
                .map(|r| r.expect("every slot filled before the last decrement"))
                .collect();
            ctx.recorder.record("serve.request_latency_us", latency_us);
            let _ = pending.reply.send(Ok(Reply {
                accepted_events: pending.accepted_events,
                windows,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::events_from_graph;
    use tagnn_graph::generate::GeneratorConfig;

    fn tiny_core(cfg_mut: impl FnOnce(&mut ServeConfig)) -> (ServeCore, tagnn_graph::DynamicGraph) {
        let g = GeneratorConfig::tiny().generate();
        let mut cfg = ServeConfig {
            universe: g.num_vertices(),
            feature_dim: g.feature_dim(),
            window: 3,
            ..ServeConfig::default()
        };
        cfg_mut(&mut cfg);
        (ServeCore::start(cfg), g)
    }

    fn replay(core: &ServeCore, g: &tagnn_graph::DynamicGraph, stream: u64) -> Vec<WindowResult> {
        let per_snapshot = events_from_graph(g);
        let total = per_snapshot.len();
        let mut windows = Vec::new();
        for (i, events) in per_snapshot.into_iter().enumerate() {
            let ticket = core
                .submit(InferRequest {
                    stream,
                    events,
                    flush: i + 1 == total,
                })
                .expect("default queue is deep enough");
            windows.extend(ticket.wait().expect("valid trace").windows);
        }
        windows
    }

    #[test]
    fn serves_a_replayed_stream_end_to_end() {
        let (core, g) = tiny_core(|_| {});
        let windows = replay(&core, &g, 0);
        // 6 snapshots, K=3 → two full windows.
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].seq, 0);
        assert_eq!(windows[1].seq, 1);
        assert!(windows.iter().all(|w| w.snapshots == 3));
        assert!(windows.iter().all(|w| w.macs > 0));
        let hist = core.recorder().histogram("serve.window_latency_us");
        assert_eq!(hist.expect("latency recorded").count(), 2);
        core.shutdown();
    }

    #[test]
    fn identical_streams_hit_the_plan_cache() {
        // Incremental planning off: every window goes through the shared
        // cache, so the second stream's plans are all hits.
        let (core, g) = tiny_core(|c| {
            c.shards = 2;
            c.incremental_planning = false;
        });
        let strip = |ws: Vec<WindowResult>| {
            ws.into_iter()
                .map(|w| (w.seq, w.snapshots, w.digest, w.macs, w.skipped_cells))
                .collect::<Vec<_>>()
        };
        let a = strip(replay(&core, &g, 0));
        let b = strip(replay(&core, &g, 1));
        assert_eq!(a, b, "same trace, same results (latency aside)");
        let stats = core.cache_stats();
        assert!(
            stats.hits >= 2,
            "second stream must reuse the first stream's plans, got {stats:?}"
        );
        let counts = core.plan_source_counts();
        assert_eq!(counts.incremental, 0, "maintainer disabled");
        assert_eq!(counts.fallbacks, 0, "fallbacks only count when enabled");
        assert!(counts.cached >= 2, "got {counts:?}");
        core.shutdown();
    }

    #[test]
    fn incremental_planning_serves_identical_results() {
        let strip = |ws: Vec<WindowResult>| {
            ws.into_iter()
                .map(|w| (w.seq, w.snapshots, w.digest, w.macs, w.skipped_cells))
                .collect::<Vec<_>>()
        };
        let (on, g) = tiny_core(|_| {});
        let a = strip(replay(&on, &g, 0));
        let on_counts = on.plan_source_counts();
        on.shutdown();
        let (off, _) = tiny_core(|c| c.incremental_planning = false);
        let b = strip(replay(&off, &g, 0));
        let off_counts = off.plan_source_counts();
        off.shutdown();

        assert_eq!(a, b, "plan path must not change served results");
        // 6 snapshots, K=3 → two windows, both sealed incrementally.
        assert_eq!(on_counts.incremental, 2, "got {on_counts:?}");
        assert_eq!(on_counts.fallbacks, 0, "got {on_counts:?}");
        assert_eq!(on_counts.scratch, 0, "got {on_counts:?}");
        assert_eq!(off_counts.incremental, 0, "got {off_counts:?}");
        assert_eq!(off_counts.scratch, 2, "got {off_counts:?}");
    }

    #[test]
    fn overlap_mode_serves_identical_results() {
        let strip = |ws: Vec<WindowResult>| {
            ws.into_iter()
                .map(|w| (w.seq, w.snapshots, w.digest, w.macs, w.skipped_cells))
                .collect::<Vec<_>>()
        };
        let (seq, g) = tiny_core(|_| {});
        let a = strip(replay(&seq, &g, 0));
        seq.shutdown();
        for lookahead in [1usize, 2] {
            let (over, _) = tiny_core(|c| {
                c.overlap = true;
                c.lookahead = lookahead;
            });
            let b = strip(replay(&over, &g, 0));
            over.shutdown();
            assert_eq!(
                a, b,
                "overlap sidecar must not change served bits (lookahead {lookahead})"
            );
        }
    }

    #[test]
    fn window_results_report_their_plan_source() {
        let (core, g) = tiny_core(|_| {});
        let windows = replay(&core, &g, 0);
        assert!(!windows.is_empty());
        assert!(
            windows
                .iter()
                .all(|w| w.plan_source == PlanSource::Incremental),
            "sealed windows of a fresh stream plan incrementally"
        );
        let hist = core.recorder().histogram("serve.plan_build_us");
        assert_eq!(
            hist.expect("seal latency recorded").count(),
            windows.len() as u64
        );
        core.shutdown();
    }

    #[test]
    fn invalid_event_is_rejected_atomically() {
        let (core, g) = tiny_core(|_| {});
        let bad = InferRequest {
            stream: 0,
            events: vec![
                EdgeEvent::AddEdge { src: 0, dst: 1 },
                EdgeEvent::AddEdge {
                    src: 0,
                    dst: u32::MAX,
                },
            ],
            flush: false,
        };
        match core.submit(bad).unwrap().wait() {
            Err(ServeError::Rejected(_)) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
        // The stream is untouched: a full replay still yields seq 0, 1.
        let windows = replay(&core, &g, 0);
        assert_eq!(windows.first().map(|w| w.seq), Some(0));
        core.shutdown();
    }

    #[test]
    fn empty_event_request_gets_an_empty_reply() {
        let (core, _) = tiny_core(|_| {});
        let reply = core
            .submit(InferRequest {
                stream: 7,
                events: vec![],
                flush: false,
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.accepted_events, 0);
        assert!(reply.windows.is_empty());
        core.shutdown();
    }

    #[test]
    fn served_digests_are_shard_count_invariant() {
        let strip = |ws: Vec<WindowResult>| {
            ws.into_iter()
                .map(|w| (w.seq, w.snapshots, w.digest, w.macs, w.skipped_cells))
                .collect::<Vec<_>>()
        };
        let mut reference = None;
        for shards in [1usize, 2, 4] {
            let (core, g) = tiny_core(|c| c.shards = shards);
            let got = strip(replay(&core, &g, 0));
            let stats = core.shard_stats();
            assert_eq!(stats.routed.len(), shards);
            assert_eq!(stats.queue_depths.len(), shards);
            assert!(
                stats.routed.iter().sum::<u64>() > 0,
                "events must be routed somewhere"
            );
            if shards == 1 {
                assert_eq!(stats.cross_shard_edges, 0, "one shard owns everything");
            }
            core.shutdown();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "{shards} shards diverged"),
            }
        }
    }

    #[test]
    fn degree_balanced_assignment_serves_identically() {
        let strip = |ws: Vec<WindowResult>| ws.into_iter().map(|w| w.digest).collect::<Vec<_>>();
        let (hash_core, g) = tiny_core(|c| c.shards = 4);
        let a = strip(replay(&hash_core, &g, 0));
        hash_core.shutdown();
        // Degree profile from the trace's final snapshot: assignment
        // policy must not change served bits, only lane balance.
        let degrees: Vec<u64> = (0..g.num_vertices())
            .map(|v| g.snapshots().last().unwrap().neighbors(v as u32).len() as u64)
            .collect();
        let (deg_core, _) = tiny_core(|c| {
            c.shards = 4;
            c.shard_assignment = crate::shard::ShardAssignment::DegreeBalanced;
            c.degree_profile = Some(degrees);
        });
        let b = strip(replay(&deg_core, &g, 0));
        deg_core.shutdown();
        assert_eq!(a, b);
    }

    #[test]
    fn dispatch_mode_changes_counters_but_never_served_bits() {
        use tagnn_tensor::DispatchMode;
        let strip = |ws: Vec<WindowResult>| {
            ws.into_iter()
                .map(|w| (w.seq, w.digest, w.macs))
                .collect::<Vec<_>>()
        };
        let (auto_core, g) = tiny_core(|_| {});
        let a = strip(replay(&auto_core, &g, 0));
        let auto_counts = auto_core.dispatch_counts();
        let auto_density = auto_core.dispatch_density();
        auto_core.shutdown();

        let (dense_core, _) = tiny_core(|c| c.dispatch = DispatchMode::Dense);
        let b = strip(replay(&dense_core, &g, 0));
        let dense_counts = dense_core.dispatch_counts();
        let dense_density = dense_core.dispatch_density();
        dense_core.shutdown();

        assert_eq!(a, b, "dispatch mode must not change served bits");
        assert!(
            auto_counts.total() > 0,
            "auto mode must tally its decisions, got {auto_counts:?}"
        );
        assert!(
            (0.0..=1.0).contains(&auto_density),
            "density is a ratio, got {auto_density}"
        );
        assert_eq!(dense_counts.spmm, 0, "dense mode never SpMMs");
        assert_eq!(dense_density, 1.0, "dense mode measures nothing");
    }

    #[test]
    fn digest_distinguishes_matrices() {
        let a = DenseMatrix::zeros(2, 2);
        let mut b = DenseMatrix::zeros(2, 2);
        b.set(1, 1, 1.0);
        assert_ne!(digest_matrices([&a]), digest_matrices([&b]));
        assert_eq!(digest_matrices([&a]), digest_matrices([&a.clone()]));
    }
}
