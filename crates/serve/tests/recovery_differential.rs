//! Kill-and-recover differentials: a core stopped mid-stream and
//! restarted from its durability directory must finish the stream with
//! window digests bit-identical to an uninterrupted run — across models,
//! shard counts, and cut points — and corrupted durable state (torn WAL
//! tails, flipped checkpoint bytes, stale tmp files) must degrade to an
//! older checkpoint or a longer replay, never to a panic or wrong bits.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tagnn_graph::generate::GeneratorConfig;
use tagnn_graph::DynamicGraph;
use tagnn_models::{ModelKind, SkipConfig};
use tagnn_serve::degrade::DegradationPolicy;
use tagnn_serve::event::events_from_graph;
use tagnn_serve::{DurabilityConfig, InferRequest, ServeConfig, ServeCore};

const WINDOW: usize = 3;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tagnn-recovery-{}-{}-{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn graph() -> DynamicGraph {
    let mut cfg = GeneratorConfig::tiny();
    cfg.num_vertices = 64;
    cfg.num_edges = 256;
    cfg.num_snapshots = 8;
    cfg.generate()
}

fn config(g: &DynamicGraph, model: ModelKind, shards: usize, dir: &ScratchDir) -> ServeConfig {
    let mut d = DurabilityConfig::new(dir.0.clone());
    d.group_commit = 1; // every append durable: no tail loss in-process
    d.checkpoint_every_windows = 2;
    ServeConfig {
        universe: g.num_vertices(),
        feature_dim: g.feature_dim(),
        window: WINDOW,
        model,
        hidden: 10,
        seed: 7,
        shards,
        skip: SkipConfig::paper_default(),
        degradation: DegradationPolicy::disabled(),
        durability: Some(d),
        ..ServeConfig::default()
    }
}

/// The canonical trace as per-stream request sequences: every stream
/// replays the same event groups (last request flushes).
fn requests(g: &DynamicGraph, streams: u64) -> Vec<InferRequest> {
    let groups = events_from_graph(g);
    let last = groups.len() - 1;
    let mut reqs = Vec::new();
    for (i, events) in groups.into_iter().enumerate() {
        for stream in 0..streams {
            reqs.push(InferRequest {
                stream,
                events: events.clone(),
                flush: i == last,
            });
        }
    }
    reqs
}

/// Runs `reqs` through `core`, returning `(stream, seq) -> digest`.
fn serve_all(core: &ServeCore, reqs: &[InferRequest]) -> HashMap<(u64, u64), u64> {
    let mut digests = HashMap::new();
    for req in reqs {
        let reply = core
            .submit(req.clone())
            .expect("admitted")
            .wait()
            .expect("served");
        for w in reply.windows {
            assert!(
                digests.insert((w.stream, w.seq), w.digest).is_none(),
                "window (stream {}, seq {}) served twice",
                w.stream,
                w.seq
            );
        }
    }
    digests
}

/// The core differential: serve a prefix, stop, restart from the same
/// durability dir, serve the suffix; the union of digests must equal an
/// uninterrupted run's bit for bit.
fn kill_and_recover(model: ModelKind, shards: usize, cut: usize) {
    let g = graph();
    let streams = shards as u64;
    let reqs = requests(&g, streams);
    assert!(cut < reqs.len(), "cut {cut} out of range {}", reqs.len());

    let baseline_dir = ScratchDir::new("base");
    let baseline = {
        let core = ServeCore::start(config(&g, model, shards, &baseline_dir));
        let d = serve_all(&core, &reqs);
        core.shutdown();
        d
    };

    let dir = ScratchDir::new("cut");
    let mut resumed = {
        let core = ServeCore::start(config(&g, model, shards, &dir));
        let d = serve_all(&core, &reqs[..cut]);
        core.shutdown();
        d
    };
    let core = ServeCore::start(config(&g, model, shards, &dir));
    let report = core.recovery_report().expect("durability was on").clone();
    // Replay must cover exactly the WAL suffix past the last checkpoint;
    // the resume cursor tells the client where to continue.
    let expect_ticks: HashMap<u64, u64> = reqs[..cut]
        .iter()
        .map(|r| {
            (
                r.stream,
                r.events
                    .iter()
                    .filter(|e| matches!(e, tagnn_serve::EdgeEvent::Tick))
                    .count() as u64,
            )
        })
        .fold(HashMap::new(), |mut acc, (s, t)| {
            *acc.entry(s).or_insert(0) += t;
            acc
        });
    for (stream, ticks) in &report.resume_ticks {
        assert_eq!(
            expect_ticks.get(stream),
            Some(ticks),
            "resume cursor for stream {stream} (model {model:?}, shards {shards}, cut {cut})"
        );
    }
    for w in serve_all(&core, &reqs[cut..]) {
        assert!(
            resumed.insert(w.0, w.1).is_none(),
            "window {:?} re-served",
            w.0
        );
    }
    core.shutdown();

    assert_eq!(
        resumed, baseline,
        "recovered digests diverge (model {model:?}, shards {shards}, cut {cut})"
    );
}

#[test]
fn kill_and_recover_across_cut_points() {
    // Early cut (before the first checkpoint), mid-stream cut, and a
    // late cut (checkpoint + short replay) on the reference config.
    for cut in [1, 5, 11] {
        kill_and_recover(ModelKind::TGcn, 2, cut);
    }
}

#[test]
fn kill_and_recover_across_models_and_shards() {
    for model in [ModelKind::CdGcn, ModelKind::GcLstm, ModelKind::TGcn] {
        for shards in [1usize, 2, 4] {
            kill_and_recover(model, shards, 5);
        }
    }
}

#[test]
fn restart_with_no_prior_state_is_a_cold_start() {
    let g = graph();
    let dir = ScratchDir::new("cold");
    let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &dir));
    let report = core.recovery_report().expect("durability on");
    assert_eq!(report.checkpoint_seq, None);
    assert_eq!(report.replayed_requests, 0);
    assert_eq!(report.truncated_tail_bytes, 0);
    let digests = serve_all(&core, &requests(&g, 1));
    assert!(!digests.is_empty());
    core.shutdown();
}

#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let g = graph();
    let reqs = requests(&g, 1);
    let dir = ScratchDir::new("torn");
    {
        let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &dir));
        serve_all(&core, &reqs[..4]);
        core.shutdown();
    }
    // Simulate a crash mid-append: garbage half-record at the tail.
    let wal = dir.0.join("wal-0.log");
    let mut f = OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open wal");
    f.write_all(&[0x55; 7]).expect("append torn tail");
    drop(f);

    let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &dir));
    let report = core.recovery_report().expect("durability on");
    assert_eq!(report.truncated_tail_bytes, 7, "torn tail measured");
    // The stream still finishes, and durable stats expose the truncation.
    assert!(core.durable_stats().truncated_tail_bytes == 7);
    serve_all(&core, &reqs[4..]);
    core.shutdown();
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_an_older_one() {
    let g = graph();
    let reqs = requests(&g, 1);
    let dir = ScratchDir::new("ckptflip");
    let baseline = {
        let base = ScratchDir::new("ckptflip-base");
        let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &base));
        let d = serve_all(&core, &reqs);
        core.shutdown();
        d
    };
    let mut resumed = {
        let mut cfg = config(&g, ModelKind::TGcn, 1, &dir);
        // Cadence 1 with keep 2: several checkpoints on disk at the cut.
        if let Some(d) = &mut cfg.durability {
            d.checkpoint_every_windows = 1;
        }
        let core = ServeCore::start(cfg);
        let d = serve_all(&core, &reqs[..6]);
        core.shutdown();
        d
    };
    let mut ckpts: Vec<PathBuf> = std::fs::read_dir(&dir.0)
        .expect("read dir")
        .filter_map(|e| {
            let p = e.expect("entry").path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            (name.starts_with("ckpt-") && name.ends_with(".bin")).then_some(p)
        })
        .collect();
    ckpts.sort();
    assert!(
        ckpts.len() >= 2,
        "expected at least two checkpoints on disk"
    );
    // Flip one payload byte in the newest checkpoint: its CRC fails and
    // recovery must fall back to the older one with a longer replay.
    let newest = ckpts.last().expect("newest");
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(newest)
        .expect("open ckpt");
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(32)).expect("seek");
    f.read_exact(&mut byte).expect("read");
    byte[0] ^= 0xFF;
    f.seek(SeekFrom::Start(32)).expect("seek back");
    f.write_all(&byte).expect("flip");
    drop(f);

    let mut cfg = config(&g, ModelKind::TGcn, 1, &dir);
    if let Some(d) = &mut cfg.durability {
        d.checkpoint_every_windows = 1;
    }
    let core = ServeCore::start(cfg);
    for w in serve_all(&core, &reqs[6..]) {
        resumed.insert(w.0, w.1);
    }
    core.shutdown();
    assert_eq!(resumed, baseline, "fallback recovery diverged");
}

#[test]
fn stale_tmp_checkpoint_is_ignored() {
    let g = graph();
    let reqs = requests(&g, 1);
    let dir = ScratchDir::new("staletmp");
    {
        let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &dir));
        serve_all(&core, &reqs[..4]);
        core.shutdown();
    }
    // A crash between tmp write and rename leaves this behind.
    std::fs::write(dir.0.join("ckpt-00000000000000ff.bin.tmp"), b"half-written")
        .expect("plant stale tmp");
    let core = ServeCore::start(config(&g, ModelKind::TGcn, 1, &dir));
    serve_all(&core, &reqs[4..]);
    core.shutdown();
}
