//! Property tests of the checkpoint codecs: live serving state must
//! survive serialize → deserialize → serialize with byte-identical
//! output across model kinds, window sizes K, and shard counts. Byte
//! identity of the second encoding is a stronger property than value
//! equality — it proves the codec has one canonical form, so recovered
//! state re-checkpoints to the same bits it was restored from.

use proptest::prelude::*;
use tagnn_graph::generate::{ChurnConfig, GeneratorConfig};
use tagnn_models::{ConcurrentEngine, DgnnModel, ModelKind, SkipConfig, StatefulModel};
use tagnn_serve::event::events_from_graph;
use tagnn_serve::persist;
use tagnn_serve::{ShardAssignment, ShardRouter, ShardedRoller, WindowRoller};

fn graph_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (2u64..5000, 2usize..5, 0.0f64..0.1, 0.0f64..0.06).prop_map(
        |(seed, num_snapshots, mutation, rewire)| GeneratorConfig {
            num_vertices: 20,
            num_edges: 60,
            feature_dim: 3,
            num_snapshots,
            power_law_alpha: 0.7,
            churn: ChurnConfig {
                feature_mutation_rate: mutation,
                edge_rewire_rate: rewire,
                vertex_churn_rate: 0.01,
                mutation_smoothness: 0.5,
            },
            seed,
            feature_row_sparsity: 0.0,
            burst: None,
        },
    )
}

fn model_kind() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::CdGcn),
        Just(ModelKind::GcLstm),
        Just(ModelKind::TGcn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded roller state cut mid-stream: encode → decode → encode is
    /// byte-identical, and the decoded value equals the exported one.
    #[test]
    fn roller_state_reencodes_byte_identically(
        cfg in graph_strategy(),
        window in 1usize..4,
        shards in 1usize..5,
        cut_frac in 0.0f64..1.0,
        incremental in proptest::bool::ANY,
    ) {
        let g = cfg.generate();
        let events: Vec<_> = events_from_graph(&g).into_iter().flatten().collect();
        let cut = ((events.len() as f64 * cut_frac) as usize).min(events.len());
        let roller = WindowRoller::new(g.num_vertices(), g.feature_dim(), window);
        let roller = if incremental { roller.with_incremental_planning() } else { roller };
        let router = ShardRouter::new(ShardAssignment::Hash, g.num_vertices(), shards, None);
        let mut roller = ShardedRoller::new(roller, router);
        for event in &events[..cut] {
            let _ = roller.apply(event).expect("canonical trace");
        }
        let state = roller.export_state();
        let bytes = persist::encode_sharded_roller(&state);
        let decoded = persist::decode_sharded_roller(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &state, "decoded state != exported state");
        let again = persist::encode_sharded_roller(&decoded);
        prop_assert_eq!(again, bytes, "second encoding changed bytes");
    }

    /// Engine session state after serving a prefix of windows: byte
    /// identity across model kinds and K.
    #[test]
    fn engine_state_reencodes_byte_identically(
        cfg in graph_strategy(),
        kind in model_kind(),
        window in 1usize..4,
        hidden in 3usize..8,
    ) {
        let g = cfg.generate();
        let model = DgnnModel::new(kind, g.feature_dim(), hidden, cfg.seed);
        let engine = ConcurrentEngine::with_window(model, SkipConfig::paper_default(), window);
        let mut session = engine.session(g.num_vertices());
        let planner = tagnn_graph::WindowPlanner::new(window);
        let snaps: Vec<_> = g.snapshots().iter().collect();
        for chunk in snaps.chunks(window) {
            let plan = planner.plan_window(chunk, 0);
            let _ = session.process_window(chunk, &plan);
        }
        let state = session.export_state();
        let bytes = persist::encode_engine_state(&state);
        let decoded = persist::decode_engine_state(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &state, "decoded state != exported state");
        let again = persist::encode_engine_state(&decoded);
        prop_assert_eq!(again, bytes, "second encoding changed bytes");

        // And the restored session continues identically to the original:
        // import into a fresh session, process one more window on both.
        let mut restored = engine.session(g.num_vertices());
        restored.import_state(decoded).expect("state matches engine");
        let probe: Vec<_> = snaps[..window.min(snaps.len())].to_vec();
        let plan = planner.plan_window(&probe, 0);
        let a = session.process_window(&probe, &plan);
        let b = restored.process_window(&probe, &plan);
        prop_assert_eq!(
            tagnn_serve::digest_matrices(&a.final_features),
            tagnn_serve::digest_matrices(&b.final_features),
            "restored session diverged on the next window"
        );
    }
}
