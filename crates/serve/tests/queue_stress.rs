//! Stress tests for the bounded queue's close/shutdown races and for
//! full-stack server shutdown under load.
//!
//! These back the blocking `queue-stress` CI job: each scenario is a
//! race that once deadlocked (close() waking only `not_empty`) or could
//! plausibly regress into one. A watchdog pattern keeps a regression
//! from hanging CI — the racing work runs on spawned threads and the
//! test polls completion against a hard deadline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tagnn_serve::{BoundedQueue, PushOutcome};

/// Polls `done` until it returns true or the deadline passes.
fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let limit = Instant::now() + deadline;
    while !done() {
        assert!(Instant::now() < limit, "watchdog: {what} did not finish");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Every producer parked in a blocking `push()` at capacity must be
/// woken by `close()` and get its item back — with MANY producers, not
/// just the single-waiter case the unit test covers (notify_one-style
/// bugs only show up with a crowd).
#[test]
fn close_unblocks_a_crowd_of_blocked_producers() {
    let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(1));
    q.push(0).unwrap(); // fill to capacity
    let producers: Vec<_> = (1..=16u64)
        .map(|i| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(i))
        })
        .collect();
    // Let the crowd reach the not_full wait.
    std::thread::sleep(Duration::from_millis(50));
    q.close();
    wait_until("16 blocked producers", Duration::from_secs(10), || {
        producers.iter().all(|h| h.is_finished())
    });
    let mut returned: Vec<u64> = producers
        .into_iter()
        .map(|h| h.join().unwrap().expect_err("queue closed at capacity"))
        .collect();
    returned.sort_unstable();
    assert_eq!(returned, (1..=16).collect::<Vec<_>>(), "every item returns");
    assert_eq!(q.pop(), Some(0));
    assert_eq!(q.pop(), None);
}

/// Producers, consumers, and a mid-flight `close()` racing on one tiny
/// queue: no deadlock, and every successfully-pushed item is popped
/// exactly once (closed-queue drain semantics).
#[test]
fn concurrent_close_loses_no_items() {
    for round in 0..20 {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(4));
        let pushed = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));

        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                let pushed = Arc::clone(&pushed);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let item = (p as u64) << 32 | i;
                        match q.try_push(item) {
                            (PushOutcome::Queued { .. }, None) => {
                                pushed.fetch_add(1, Ordering::SeqCst);
                            }
                            (PushOutcome::Full, Some(item)) => {
                                // Escalate to the blocking path half the
                                // time so both push flavors race close().
                                if i % 2 == 0 && q.push(item).is_ok() {
                                    pushed.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                            (PushOutcome::Closed, Some(_)) => return,
                            other => panic!("impossible outcome {other:?}"),
                        }
                    }
                })
            })
            .collect();

        let consumers: Vec<_> = (0..3)
            .map(|c| {
                let q = Arc::clone(&q);
                let popped = Arc::clone(&popped);
                std::thread::spawn(move || loop {
                    // Mix single pops and micro-batches across consumers.
                    let got = if c == 0 {
                        q.pop().map(|_| 1).unwrap_or(0)
                    } else {
                        q.pop_batch(8, Duration::from_millis(2)).len() as u64
                    };
                    if got == 0 {
                        return; // closed and drained
                    }
                    popped.fetch_add(got, Ordering::SeqCst);
                })
            })
            .collect();

        // Close somewhere in the middle of the melee; vary the cut
        // point across rounds to move the race window.
        std::thread::sleep(Duration::from_millis(round % 5));
        q.close();

        wait_until("stress round threads", Duration::from_secs(20), || {
            producers.iter().all(|h| h.is_finished()) && consumers.iter().all(|h| h.is_finished())
        });
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(
            pushed.load(Ordering::SeqCst),
            popped.load(Ordering::SeqCst),
            "round {round}: every accepted item must be popped exactly once"
        );
    }
}

/// Consumers parked in `pop_batch` while producers are parked in `push`
/// on the SAME full queue — close() must wake both sides.
#[test]
fn close_wakes_both_condvars_at_once() {
    let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(1));
    q.push(0).unwrap();
    let producer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || q.push(1))
    };
    // Drain so the consumer side can park on an EMPTY queue: pop the
    // item, which also lets the blocked producer slide in.
    assert_eq!(q.pop(), Some(0));
    wait_until("producer handoff", Duration::from_secs(10), || {
        producer.is_finished()
    });
    producer.join().unwrap().unwrap();
    assert_eq!(q.pop(), Some(1));

    // Now park a consumer (empty queue) and a producer (full queue
    // after one push) simultaneously.
    q.push(2).unwrap();
    let blocked_producer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || q.push(3))
    };
    let blocked_consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            // First batch takes {2} (and possibly 3); keep popping until
            // the queue reports closed-and-drained.
            let mut total = 0u64;
            loop {
                let batch = q.pop_batch(1, Duration::from_secs(30));
                if batch.is_empty() {
                    return total;
                }
                total += batch.len() as u64;
            }
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    q.close();
    wait_until("both blocked sides", Duration::from_secs(10), || {
        blocked_producer.is_finished() && blocked_consumer.is_finished()
    });
    let produced_3 = blocked_producer.join().unwrap().is_ok();
    let consumed = blocked_consumer.join().unwrap();
    // Item 2 always arrives; item 3 arrives iff its push won the race.
    assert_eq!(consumed, 1 + produced_3 as u64);
}

/// Full-stack shutdown under load: a server with in-flight requests and
/// live connections must shut down within the watchdog window, and the
/// io thread must drain in-flight replies rather than drop them.
#[test]
fn server_shutdown_under_load_terminates() {
    use tagnn_serve::{binwire, EdgeEvent, ServeConfig, ServeCore, Server};

    let cfg = ServeConfig {
        window: 3,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind(ServeCore::start(cfg), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Clients hammer infer requests until the socket dies.
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                use std::io::Write;
                let mut conn = match std::net::TcpStream::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return 0u64,
                };
                let mut frames = binwire::FrameReader::new();
                let mut replies = 0u64;
                for i in 0..10_000u64 {
                    let events = [EdgeEvent::AddEdge { src: 0, dst: 1 }, EdgeEvent::Tick];
                    let mut out = Vec::new();
                    binwire::encode_infer(&mut out, i, c as u64, &events, false);
                    if conn.write_all(&out).is_err() {
                        break;
                    }
                    match frames.read_frame(&mut conn) {
                        Ok(Some(_)) => replies += 1,
                        _ => break,
                    }
                }
                replies
            })
        })
        .collect();

    // Let load build, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    let shutdown = std::thread::spawn(move || server.shutdown());
    wait_until(
        "server shutdown under load",
        Duration::from_secs(30),
        || shutdown.is_finished(),
    );
    shutdown.join().unwrap();
    for h in clients {
        // Clients see either clean replies then EOF or an error —
        // never a hang.
        let _ = h.join().unwrap();
    }
}
