//! Property-based tests of the simulator building blocks: dispatch
//! optimality bounds, memory-model monotonicity, and energy accounting.

use proptest::prelude::*;
use tagnn_sim::dispatch;
use tagnn_sim::energy::EnergyModel;
use tagnn_sim::memory::{HbmModel, PingPongBuffer};
use tagnn_sim::AcceleratorConfig;

fn items_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1000, 0..50)
}

proptest! {
    #[test]
    fn balanced_dispatch_is_within_graham_of_round_robin(items in items_strategy(), units in 1usize..12) {
        // LPT is a 4/3-approximation of OPT, and OPT <= round-robin, so
        // LPT can exceed round-robin on adversarial inputs but never by
        // more than the Graham factor.
        let b = dispatch::balanced(&items, units);
        let rr = dispatch::round_robin(&items, units);
        prop_assert!(b.makespan as f64 <= rr.makespan as f64 * (4.0 / 3.0) + 1.0);
        prop_assert_eq!(b.total_work, rr.total_work);
    }

    #[test]
    fn makespan_respects_lower_bounds(items in items_strategy(), units in 1usize..12) {
        let r = dispatch::balanced(&items, units);
        let total: u64 = items.iter().sum();
        let max = items.iter().copied().max().unwrap_or(0);
        prop_assert!(r.makespan >= total.div_ceil(units as u64).min(total));
        prop_assert!(r.makespan >= max);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilization));
    }

    #[test]
    fn lpt_is_within_4_thirds_of_optimal_lower_bound(items in items_strategy(), units in 1usize..8) {
        // Graham's bound: LPT makespan <= (4/3 - 1/3m) * OPT, and
        // OPT >= max(total/m, max_item).
        let r = dispatch::balanced(&items, units);
        let total: u64 = items.iter().sum();
        let max = items.iter().copied().max().unwrap_or(0);
        let opt_lb = (total as f64 / units as f64).max(max as f64);
        if opt_lb > 0.0 {
            prop_assert!(r.makespan as f64 <= opt_lb * (4.0 / 3.0) + 1.0);
        }
    }

    #[test]
    fn hbm_cycles_are_monotone(bytes_a in 0u64..1_000_000, extra in 0u64..1_000_000, bursts in 1u64..100) {
        let hbm = HbmModel::new(&AcceleratorConfig::tagnn_default());
        prop_assert!(hbm.stream_cycles(bytes_a, bursts) <= hbm.stream_cycles(bytes_a + extra, bursts));
        prop_assert!(hbm.stream_cycles(bytes_a, bursts) <= hbm.stream_cycles(bytes_a, bursts + 1) || bytes_a == 0);
        prop_assert!(hbm.bandwidth_cycles(bytes_a) <= hbm.stream_cycles(bytes_a, bursts) || bytes_a == 0);
    }

    #[test]
    fn ping_pong_refills_cover_working_set(capacity in 2usize..1_000_000, working in 0u64..10_000_000) {
        let buf = PingPongBuffer::new(capacity);
        let refills = buf.refills(working);
        prop_assert!(refills >= 1);
        prop_assert!(refills * buf.half_bytes() as u64 >= working);
        if working > 0 {
            prop_assert!((refills - 1) * buf.half_bytes() as u64 <= working);
        }
    }

    #[test]
    fn energy_is_monotone_in_every_component(
        t in 0.0f64..10.0,
        macs in 0u64..1_000_000,
        dram in 0u64..1_000_000,
        sram in 0u64..1_000_000,
    ) {
        let m = EnergyModel::fpga(30.0);
        let base = m.energy_mj(t, macs, dram, sram);
        prop_assert!(m.energy_mj(t + 1.0, macs, dram, sram) >= base);
        prop_assert!(m.energy_mj(t, macs + 1000, dram, sram) >= base);
        prop_assert!(m.energy_mj(t, macs, dram + 1000, sram) >= base);
        prop_assert!(m.energy_mj(t, macs, dram, sram + 1000) >= base);
        prop_assert!(base >= 0.0);
    }

    #[test]
    fn timeline_total_is_bounded_by_serial_and_critical_path(
        loads in proptest::collection::vec(0u64..500, 1..20),
        computes in proptest::collection::vec(0u64..500, 1..20),
    ) {
        use tagnn_sim::timeline::{simulate_timeline, WindowWork};
        let n = loads.len().min(computes.len());
        let windows: Vec<WindowWork> = (0..n)
            .map(|i| WindowWork {
                load_cycles: loads[i],
                msdl_cycles: 0,
                compute_cycles: computes[i],
                writeback_cycles: 0,
            })
            .collect();
        let r = simulate_timeline(&windows);
        let serial: u64 = windows.iter().map(WindowWork::serial_cycles).sum();
        let load_sum: u64 = loads[..n].iter().sum();
        let compute_sum: u64 = computes[..n].iter().sum();
        prop_assert!(r.total_cycles <= serial);
        prop_assert!(r.total_cycles >= load_sum.max(compute_sum) .max(windows.last().map(|w| w.compute_cycles).unwrap_or(0)));
    }

    #[test]
    fn pipeline_total_bounded_by_bottleneck_and_serial(
        services in proptest::collection::vec(1u64..50, 1..40),
        stages in 1usize..5,
    ) {
        use tagnn_sim::event::{simulate_pipeline, StageSpec};
        let specs: Vec<StageSpec> =
            (0..stages).map(|i| StageSpec::new(&format!("s{i}"), 2)).collect();
        let r = simulate_pipeline(&specs, services.len() as u64, |s, i| {
            services[i as usize] + s as u64 % 2
        });
        let serial: u64 = (0..stages)
            .map(|s| services.iter().map(|v| v + s as u64 % 2).sum::<u64>())
            .sum();
        let bottleneck: u64 = (0..stages)
            .map(|s| services.iter().map(|v| v + s as u64 % 2).sum::<u64>())
            .max()
            .unwrap_or(0);
        prop_assert!(r.total_cycles <= serial);
        prop_assert!(r.total_cycles >= bottleneck);
    }

    #[test]
    fn config_sweeps_preserve_invariants(dcus in 1usize..64, macs in 64usize..16384) {
        let base = AcceleratorConfig::tagnn_default();
        let with_dcus = base.with_dcus(dcus);
        prop_assert_eq!(with_dcus.num_dcus, dcus);
        prop_assert!(with_dcus.num_macs > 0);
        let macs = macs.max(base.num_dcus);
        let with_macs = base.with_macs(macs);
        prop_assert_eq!(with_macs.num_macs, macs);
        prop_assert_eq!(with_macs.num_dcus, base.num_dcus);
        prop_assert!(with_macs.cpes_per_dcu + with_macs.apes_per_dcu <= macs / base.num_dcus + 1);
    }
}
