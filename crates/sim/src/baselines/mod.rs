//! Analytic cost models of every baseline platform the paper compares
//! against: software frameworks on CPU/GPU (DGL, PyGT, CacheG, ESDG,
//! PiPAD, TaGNN-S) and prior DGNN accelerators (DGNN-Booster, E-DGCN,
//! Cambricon-DG).
//!
//! Each platform is a parameter set — sustained compute rate, memory
//! bandwidth, useful-data ratio (Fig. 2c), runtime-overhead fraction,
//! memory/compute overlap quality, power — plus the execution pattern it
//! follows (snapshot-by-snapshot for everything except TaGNN-S). The
//! estimate maps a measured [`Workload`] through those parameters.
//!
//! Baselines never touch the MSDL frontend themselves: the window plans
//! flow in through [`Workload::measure_with_plans`], whose concurrent
//! counters were produced against the prebuilt
//! [`tagnn_graph::plan::WindowPlan`]s — so an experiment that measures
//! one workload from a shared plan set prices every platform without a
//! single extra classification, extraction, or packing pass.

pub mod cambricon_dg;
pub mod cpu_dgl;
pub mod dgnn_booster;
pub mod edgcn;
pub mod gpu_pipad;

use crate::energy::EnergyModel;
use crate::workload::{Workload, ELEM_BYTES};
use serde::{Deserialize, Serialize};
use tagnn_models::ExecutionStats;

/// Which engine's work counters a platform replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecPattern {
    /// Snapshot-by-snapshot: full recompute and reload per snapshot.
    SnapshotBySnapshot,
    /// TaGNN's topology-aware concurrent pattern (used by TaGNN-S).
    Concurrent,
}

/// An analytic platform model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformModel {
    /// Display name.
    pub name: String,
    /// Sustained MACs per second the platform achieves on DGNN kernels
    /// (peak throughput already derated by achievable utilisation).
    pub effective_macs_per_sec: f64,
    /// Memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// Fraction of fetched bytes that are useful (Fig. 2c); redundant and
    /// over-fetched data inflate traffic by its inverse.
    pub useful_data_ratio: f64,
    /// Fraction of total time lost to framework/runtime overhead.
    pub runtime_overhead: f64,
    /// Memory/compute overlap quality in `[0, 1]`: 1 = perfect dataflow
    /// overlap (accelerators), 0 = fully serialised.
    pub overlap: f64,
    /// Fraction of the *redundant* aggregation work (reference minus
    /// concurrent) this platform eliminates (Cambricon-DG's nonlinear
    /// isolation); 0 for everything else.
    pub aggregation_reuse: f64,
    /// Board/package power in watts.
    pub power_w: f64,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Execution pattern.
    pub pattern: ExecPattern,
}

/// Estimated execution of a workload on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Total milliseconds.
    pub time_ms: f64,
    /// Memory-bound milliseconds (pre-overlap).
    pub memory_ms: f64,
    /// Compute-bound milliseconds (pre-overlap).
    pub compute_ms: f64,
    /// Runtime-overhead milliseconds.
    pub overhead_ms: f64,
    /// Total DRAM bytes moved (including the useless fraction).
    pub dram_bytes: u64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// MACs retired.
    pub macs: u64,
}

impl PlatformModel {
    /// Estimates `workload` on this platform.
    pub fn estimate(&self, workload: &Workload) -> PlatformReport {
        let stats: &ExecutionStats = match self.pattern {
            ExecPattern::SnapshotBySnapshot => &workload.reference,
            ExecPattern::Concurrent => &workload.concurrent,
        };

        // Cambricon-DG's nonlinear isolation removes part of the redundant
        // aggregation (work the concurrent pattern would not do at all).
        let redundant_agg = workload
            .reference
            .gnn_aggregate_macs
            .saturating_sub(workload.concurrent.gnn_aggregate_macs);
        let redundant_loads = workload
            .reference
            .feature_rows_loaded
            .saturating_sub(workload.concurrent.feature_rows_loaded);
        let agg_macs =
            stats.gnn_aggregate_macs - (redundant_agg as f64 * self.aggregation_reuse) as u64;
        let rows_loaded =
            stats.feature_rows_loaded - (redundant_loads as f64 * self.aggregation_reuse) as u64;

        let macs = agg_macs + stats.gnn_combine_macs + stats.rnn_macs;
        let useful_bytes =
            rows_loaded * workload.row_bytes() + stats.structure_words_loaded * ELEM_BYTES;
        let dram_bytes = (useful_bytes as f64 / self.useful_data_ratio.max(1e-3)) as u64;

        let memory_s = dram_bytes as f64 / self.mem_bandwidth;
        let compute_s = macs as f64 / self.effective_macs_per_sec;
        // Overlap: the longer phase plus the non-overlapped part of the
        // shorter one.
        let base_s = memory_s.max(compute_s) + (1.0 - self.overlap) * memory_s.min(compute_s);
        let total_s = base_s / (1.0 - self.runtime_overhead.min(0.95));
        let overhead_s = total_s - base_s;

        let energy_mj = self
            .energy
            .energy_mj(total_s, macs, dram_bytes, useful_bytes);
        PlatformReport {
            time_ms: total_s * 1.0e3,
            memory_ms: memory_s * 1.0e3,
            compute_ms: compute_s * 1.0e3,
            overhead_ms: overhead_s * 1.0e3,
            dram_bytes,
            energy_mj,
            macs,
        }
    }

    /// Phase-level time shares `(aggregation, combination, update, other)`
    /// summing to 1 — the Fig. 2(a) breakdown. Memory time is attributed to
    /// phases proportionally to their data appetite (aggregation owns the
    /// gather traffic).
    pub fn phase_breakdown(&self, workload: &Workload) -> (f64, f64, f64, f64) {
        let stats: &ExecutionStats = match self.pattern {
            ExecPattern::SnapshotBySnapshot => &workload.reference,
            ExecPattern::Concurrent => &workload.concurrent,
        };
        let report = self.estimate(workload);
        let macs_total =
            (stats.gnn_aggregate_macs + stats.gnn_combine_macs + stats.rnn_macs).max(1) as f64;
        let compute = report.compute_ms;
        // Aggregation = its compute share + all gather memory time.
        let agg = compute * stats.gnn_aggregate_macs as f64 / macs_total + report.memory_ms;
        let comb = compute * stats.gnn_combine_macs as f64 / macs_total;
        let upd = compute * stats.rnn_macs as f64 / macs_total;
        let other = report.overhead_ms;
        let sum = agg + comb + upd + other;
        (agg / sum, comb / sum, upd / sum, other / sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::generate::DatasetPreset;
    use tagnn_models::{ModelKind, SkipConfig};

    fn workload() -> Workload {
        let g = DatasetPreset::Gdelt.config_small(6).generate();
        Workload::measure(
            &g,
            "GT",
            ModelKind::TGcn,
            8,
            4,
            SkipConfig::paper_default(),
            1,
        )
    }

    #[test]
    fn cpu_is_slower_than_gpu() {
        let w = workload();
        let cpu = cpu_dgl::dgl_cpu().estimate(&w);
        let gpu = gpu_pipad::pipad().estimate(&w);
        assert!(
            cpu.time_ms > gpu.time_ms,
            "CPU {} vs GPU {}",
            cpu.time_ms,
            gpu.time_ms
        );
    }

    #[test]
    fn accelerators_beat_software() {
        let w = workload();
        let gpu = gpu_pipad::pipad().estimate(&w);
        for accel in [
            dgnn_booster::dgnn_booster(),
            edgcn::edgcn(),
            cambricon_dg::cambricon_dg(),
        ] {
            let r = accel.estimate(&w);
            assert!(
                r.time_ms < gpu.time_ms,
                "{} not faster than PiPAD",
                accel.name
            );
        }
    }

    #[test]
    fn accelerator_ordering_matches_paper() {
        // Fig. 10: Cambricon-DG > E-DGCN > DGNN-Booster.
        let w = workload();
        let booster = dgnn_booster::dgnn_booster().estimate(&w);
        let edgcn = edgcn::edgcn().estimate(&w);
        let cam = cambricon_dg::cambricon_dg().estimate(&w);
        assert!(cam.time_ms < edgcn.time_ms, "Cambricon must beat E-DGCN");
        assert!(
            edgcn.time_ms < booster.time_ms,
            "E-DGCN must beat DGNN-Booster"
        );
    }

    #[test]
    fn tagnn_s_beats_pipad() {
        // Fig. 8a: TaGNN-S outperforms PiPAD despite its runtime overhead.
        let w = workload();
        let pipad = gpu_pipad::pipad().estimate(&w);
        let tagnn_s = gpu_pipad::tagnn_s().estimate(&w);
        assert!(tagnn_s.time_ms < pipad.time_ms);
    }

    #[test]
    fn useful_data_ratio_inflates_traffic() {
        let w = workload();
        let mut p = gpu_pipad::pipad();
        let base = p.estimate(&w).dram_bytes;
        p.useful_data_ratio /= 2.0;
        assert!(p.estimate(&w).dram_bytes > base);
    }

    #[test]
    fn phase_breakdown_sums_to_one() {
        let w = workload();
        for p in [cpu_dgl::dgl_cpu(), gpu_pipad::pipad(), gpu_pipad::pygt()] {
            let (a, c, u, o) = p.phase_breakdown(&w);
            assert!((a + c + u + o - 1.0).abs() < 1e-9);
            assert!(a > 0.0 && c > 0.0 && u > 0.0 && o > 0.0);
            assert!(a > c, "aggregation (gather-heavy) dominates combination");
        }
    }

    #[test]
    fn energy_orders_like_time_for_same_power_class() {
        let w = workload();
        let booster = dgnn_booster::dgnn_booster().estimate(&w);
        let cam = cambricon_dg::cambricon_dg().estimate(&w);
        assert!(cam.energy_mj < booster.energy_mj);
    }
}
