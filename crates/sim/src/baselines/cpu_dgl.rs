//! DGL on the Intel Xeon Gold 6151 — the paper's CPU software baseline.
//!
//! The Xeon 6151 (§5.1: 3.0 GHz, 696 GB DRAM) sustains only a small
//! fraction of peak FLOPs on sparse gather-dominated DGNN kernels; DGL's
//! SpMM kernels additionally fetch entire cache lines per irregular vertex
//! access, so the useful-data ratio is the lowest of all platforms
//! (Fig. 2c).

use crate::baselines::{ExecPattern, PlatformModel};
use crate::energy::EnergyModel;

/// DGL-CPU (v2.4.0) on the Xeon 6151.
pub fn dgl_cpu() -> PlatformModel {
    PlatformModel {
        name: "DGL-CPU".to_string(),
        // Sparse aggregation leaves the AVX units mostly idle.
        effective_macs_per_sec: 14.0e9,
        // Achieved bandwidth on irregular gathers, not STREAM peak.
        mem_bandwidth: 18.0e9,
        useful_data_ratio: 0.11,
        runtime_overhead: 0.35,
        overlap: 0.3,
        aggregation_reuse: 0.0,
        power_w: 165.0,
        energy: EnergyModel::processor(165.0),
        pattern: ExecPattern::SnapshotBySnapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_are_sane() {
        let p = dgl_cpu();
        assert!(p.useful_data_ratio > 0.0 && p.useful_data_ratio < 1.0);
        assert!(p.runtime_overhead < 1.0);
        assert_eq!(p.pattern, ExecPattern::SnapshotBySnapshot);
    }
}
