//! DGNN-Booster (FCCM'23): a generic FPGA accelerator framework for DGNN
//! inference — Table 4: 280 MHz, 4,096 MACs, 5 MB on-chip, 256 GB/s HBM.
//!
//! Booster pipelines GNN and RNN stages with multi-level parallelism but
//! executes snapshot-by-snapshot with no cross-snapshot reuse and no cell
//! skipping, so it reloads every vertex feature each snapshot.

use crate::baselines::{ExecPattern, PlatformModel};
use crate::energy::EnergyModel;

/// The DGNN-Booster model.
pub fn dgnn_booster() -> PlatformModel {
    PlatformModel {
        name: "DGNN-Booster".to_string(),
        // 280 MHz x 4096 MACs = 1.15 TMAC/s peak, derated by the generic
        // (HLS-generated) datapath's achievable utilisation.
        effective_macs_per_sec: 280.0e6 * 4096.0 * 0.45,
        mem_bandwidth: 256.0e9,
        useful_data_ratio: 0.30,
        runtime_overhead: 0.05,
        overlap: 0.85,
        aggregation_reuse: 0.0,
        power_w: 38.0,
        energy: EnergyModel::fpga(38.0),
        pattern: ExecPattern::SnapshotBySnapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table4_compute() {
        let p = dgnn_booster();
        assert!((p.effective_macs_per_sec - 280.0e6 * 4096.0 * 0.45).abs() < 1.0);
        assert!((p.mem_bandwidth - 256.0e9).abs() < 1.0);
        assert_eq!(p.pattern, ExecPattern::SnapshotBySnapshot);
    }
}
