//! GPU software systems on the NVIDIA A100: PyGT, CacheG, ESDG, PiPAD, and
//! the software port of our approach (TaGNN-S).
//!
//! All five share the A100's raw capabilities (§5.1: 6,912 cores, 80 GB
//! HBM); they differ in achieved utilisation (Fig. 2d caps PiPAD below
//! 22.3 % SM utilisation), useful-data ratio (Fig. 2c), and runtime
//! overhead. TaGNN-S follows the concurrent execution pattern but pays the
//! large runtime overhead the paper measures for it (40.1–62.3 % of total
//! time, Fig. 8a) — the gap a bespoke accelerator closes.

use crate::baselines::{ExecPattern, PlatformModel};
use crate::energy::EnergyModel;

/// A100 memory bandwidth achieved on irregular DGNN gathers (bytes/s) —
/// a small fraction of the 1.55 TB/s STREAM peak, consistent with the
/// sub-22.3 % SM utilisation of Fig. 2d.
const A100_BW: f64 = 0.15e12;
/// A100 board power (W).
const A100_POWER: f64 = 300.0;

fn a100(name: &str) -> PlatformModel {
    PlatformModel {
        name: name.to_string(),
        effective_macs_per_sec: 0.2e12,
        mem_bandwidth: A100_BW,
        useful_data_ratio: 0.15,
        runtime_overhead: 0.35,
        overlap: 0.5,
        aggregation_reuse: 0.0,
        power_w: A100_POWER,
        energy: EnergyModel::processor(A100_POWER),
        pattern: ExecPattern::SnapshotBySnapshot,
    }
}

/// PyTorch Geometric Temporal — the slowest GPU framework (Fig. 2b's
/// normalisation base).
pub fn pygt() -> PlatformModel {
    let mut p = a100("PyGT");
    p.effective_macs_per_sec = 0.08e12;
    p.mem_bandwidth = 0.10e12;
    p.useful_data_ratio = 0.10;
    p.runtime_overhead = 0.45;
    p
}

/// CacheG: caching reduces some redundant transfers.
pub fn cacheg() -> PlatformModel {
    let mut p = a100("CacheG");
    p.effective_macs_per_sec = 0.10e12;
    p.mem_bandwidth = 0.11e12;
    p.useful_data_ratio = 0.13;
    p.runtime_overhead = 0.40;
    p
}

/// ESDG: graph-difference transfers cut traffic further.
pub fn esdg() -> PlatformModel {
    let mut p = a100("ESDG");
    p.effective_macs_per_sec = 0.12e12;
    p.mem_bandwidth = 0.12e12;
    p.useful_data_ratio = 0.15;
    p.runtime_overhead = 0.38;
    p
}

/// PiPAD — the state-of-the-art GPU DGNN framework (pipelined transfers,
/// overlap-aware batching), yet still >81.7 % redundant accesses (Fig. 2c).
pub fn pipad() -> PlatformModel {
    let mut p = a100("PiPAD");
    p.effective_macs_per_sec = 0.20e12;
    p.useful_data_ratio = 0.18;
    p.runtime_overhead = 0.30;
    p.overlap = 0.6;
    p
}

/// TaGNN-S: our topology-aware concurrent approach implemented in software
/// on the same A100 (§5.1). Reuse slashes traffic and the similarity check
/// skips cells, but the irregular multi-graph traversal and the adaptive
/// mode switching cost 40–62 % runtime overhead on a general-purpose
/// processor (§3.2) — the motivation for the accelerator.
pub fn tagnn_s() -> PlatformModel {
    let mut p = a100("TaGNN-S");
    p.pattern = ExecPattern::Concurrent;
    p.effective_macs_per_sec = 0.18e12;
    p.useful_data_ratio = 0.55;
    p.runtime_overhead = 0.52;
    p.overlap = 0.6;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipad_is_fastest_snapshot_by_snapshot_gpu_system() {
        // Effective throughput and data efficiency must rank PiPAD first
        // among the snapshot-by-snapshot systems (Fig. 2b).
        for other in [pygt(), cacheg(), esdg()] {
            assert!(pipad().effective_macs_per_sec >= other.effective_macs_per_sec);
            assert!(pipad().useful_data_ratio >= other.useful_data_ratio);
        }
    }

    #[test]
    fn tagnn_s_uses_concurrent_pattern() {
        assert_eq!(tagnn_s().pattern, ExecPattern::Concurrent);
        assert_eq!(pipad().pattern, ExecPattern::SnapshotBySnapshot);
    }

    #[test]
    fn tagnn_s_overhead_matches_paper_band() {
        // Fig. 8a: runtime overhead is 40.1%-62.3% of TaGNN-S's time.
        let o = tagnn_s().runtime_overhead;
        assert!((0.40..=0.62).contains(&o));
    }
}
