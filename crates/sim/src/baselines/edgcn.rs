//! E-DGCN (DAC'24): an ASIC DGCN accelerator with reconfigurable processing
//! elements — Table 4: 1 GHz, 4,096 MACs (8x8 PEs of 4x4 adders), 12 MB
//! on-chip, 256 GB/s HBM.
//!
//! The reconfigurable PEs adapt to the diverse computation types of DGCN
//! layers, raising compute utilisation above DGNN-Booster's, but execution
//! remains snapshot-by-snapshot with no cross-snapshot reuse.

use crate::baselines::{ExecPattern, PlatformModel};
use crate::energy::EnergyModel;

/// The E-DGCN model.
pub fn edgcn() -> PlatformModel {
    PlatformModel {
        name: "E-DGCN".to_string(),
        // 1 GHz x 4096 MACs, derated by realistic PE-array utilisation.
        effective_macs_per_sec: 1.0e9 * 4096.0 * 0.55,
        mem_bandwidth: 256.0e9,
        useful_data_ratio: 0.34,
        runtime_overhead: 0.04,
        overlap: 0.85,
        aggregation_reuse: 0.0,
        power_w: 34.0,
        energy: EnergyModel::asic(34.0),
        pattern: ExecPattern::SnapshotBySnapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::dgnn_booster::dgnn_booster;

    #[test]
    fn outperforms_booster_in_compute_rate() {
        assert!(edgcn().effective_macs_per_sec > dgnn_booster().effective_macs_per_sec);
    }

    #[test]
    fn still_snapshot_by_snapshot() {
        assert_eq!(edgcn().pattern, ExecPattern::SnapshotBySnapshot);
        assert_eq!(edgcn().aggregation_reuse, 0.0);
    }
}
