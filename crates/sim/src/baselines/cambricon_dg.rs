//! Cambricon-DG (HPCA'25): an ASIC accelerator with a *nonlinear isolation*
//! mechanism that eliminates part of the redundant aggregation across
//! snapshots — Table 4: 1 GHz, 4,096 MACs (1 DU, 32 TUs, 32 SUs), 10 MB
//! on-chip, 256 GB/s HBM.
//!
//! Isolation lets unchanged linear partial aggregates be reused across
//! snapshots (modelled as removing roughly half of the work the concurrent
//! pattern proves redundant), but temporal data dependencies in the RNN
//! remain untouched and vertices are still classified per snapshot — the
//! gap TaGNN's window-level classification and cell skipping close.

use crate::baselines::{ExecPattern, PlatformModel};
use crate::energy::EnergyModel;

/// The Cambricon-DG model.
pub fn cambricon_dg() -> PlatformModel {
    PlatformModel {
        name: "Cambricon-DG".to_string(),
        effective_macs_per_sec: 1.0e9 * 4096.0 * 0.60,
        mem_bandwidth: 256.0e9,
        useful_data_ratio: 0.40,
        runtime_overhead: 0.04,
        overlap: 0.88,
        // Nonlinear isolation removes ~55 % of the cross-snapshot redundant
        // aggregation (and the loads feeding it).
        aggregation_reuse: 0.55,
        power_w: 35.0,
        energy: EnergyModel::asic(35.0),
        pattern: ExecPattern::SnapshotBySnapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::edgcn::edgcn;

    #[test]
    fn isolates_redundant_aggregation() {
        let p = cambricon_dg();
        assert!(p.aggregation_reuse > 0.0 && p.aggregation_reuse < 1.0);
        assert_eq!(edgcn().aggregation_reuse, 0.0, "only Cambricon-DG reuses");
    }

    #[test]
    fn best_prior_accelerator() {
        let cam = cambricon_dg();
        let e = edgcn();
        assert!(cam.effective_macs_per_sec >= e.effective_macs_per_sec);
        assert!(cam.useful_data_ratio >= e.useful_data_ratio);
    }
}
