//! The top-level TaGNN accelerator simulator.
//!
//! Per window, the simulator replays the paper's dataflow: the MSDL
//! classifies vertices and traverses the affected subgraph, the Task
//! Dispatcher balances degree-weighted tasks over the DCUs, the DCUs retire
//! aggregation/combination/cell-update arithmetic, and the Adaptive RNN
//! Unit scores similarities and condenses deltas — all overlapped with HBM
//! streaming through the ping-pong buffers. Work quantities come from the
//! measured [`Workload`]; the configuration decides how many cycles that
//! work takes.

use crate::arnn::ArnnModel;
use crate::config::AcceleratorConfig;
use crate::dcu::DcuModel;
use crate::dispatch;
use crate::energy::EnergyModel;
use crate::memory::{DramTraffic, HbmModel, PingPongBuffer};
use crate::msdl::MsdlModel;
use crate::timeline;
use crate::workload::{Workload, ELEM_BYTES};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tagnn_graph::plan::{PlanInstrumentation, WindowPlan, WindowPlanner};
use tagnn_graph::DynamicGraph;
use tagnn_models::skip::SkipStats;
use tagnn_obs::{span as obs_span, Recorder};

/// Per-unit cycle breakdown of one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// MSDL classification + traversal pipelines.
    pub msdl: u64,
    /// APE aggregation cycles.
    pub aggregation: u64,
    /// CPE combination cycles.
    pub combination: u64,
    /// CPE cell-update cycles.
    pub rnn: u64,
    /// Adaptive RNN Unit (similarity + condense) cycles.
    pub arnn: u64,
    /// HBM streaming cycles.
    pub dram: u64,
}

impl CycleBreakdown {
    /// All compute-side cycles (everything that overlaps with DRAM).
    pub fn compute_total(&self) -> u64 {
        self.msdl + self.aggregation + self.combination + self.rnn + self.arnn
    }
}

/// The result of simulating one workload on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Configuration name.
    pub name: String,
    /// Workload (dataset) name.
    pub workload: String,
    /// Total cycles after memory/compute overlap.
    pub cycles: u64,
    /// Wall-clock milliseconds at the configured clock.
    pub time_ms: f64,
    /// Per-unit cycle breakdown (pre-overlap).
    pub breakdown: CycleBreakdown,
    /// DRAM traffic.
    pub dram: DramTraffic,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Average dispatcher utilisation in `[0, 1]`.
    pub dispatch_utilization: f64,
    /// Cycles the compute side stalled waiting for data (timeline model).
    pub compute_stall_cycles: u64,
    /// Cycles the memory channel idled (timeline model).
    pub memory_idle_cycles: u64,
    /// Bytes re-fetched because the feature working set spilled the
    /// on-chip feature buffer.
    pub spill_bytes: u64,
    /// Cell-skipping tallies of the underlying execution.
    pub skip: SkipStats,
    /// Window-planning instrumentation: plan build time and cache
    /// hit/miss tallies (timing and cache fields are excluded from
    /// report equality).
    pub plan: PlanInstrumentation,
}

impl SimReport {
    /// Speedup of this run versus another report's time.
    pub fn speedup_vs(&self, other: &SimReport) -> f64 {
        other.time_ms / self.time_ms
    }

    /// Publishes the report on `rec`: cycle totals and traffic as
    /// `{prefix}.{field}` counters, per-unit cycle shares and derived
    /// rates (time, energy, utilisation, stall/idle cycles) as gauges.
    pub fn publish(&self, rec: &Recorder, prefix: &str) {
        let c = |name: &str, v: u64| rec.incr(&format!("{prefix}.{name}"), v);
        let g = |name: &str, v: f64| rec.gauge(&format!("{prefix}.{name}"), v);
        c("cycles", self.cycles);
        g("time_ms", self.time_ms);
        g("energy_mj", self.energy_mj);
        g("dispatch_utilization", self.dispatch_utilization);
        g("cycles.msdl", self.breakdown.msdl as f64);
        g("cycles.aggregation", self.breakdown.aggregation as f64);
        g("cycles.combination", self.breakdown.combination as f64);
        g("cycles.rnn", self.breakdown.rnn as f64);
        g("cycles.arnn", self.breakdown.arnn as f64);
        g("cycles.dram", self.breakdown.dram as f64);
        g("compute_stall_cycles", self.compute_stall_cycles as f64);
        g("memory_idle_cycles", self.memory_idle_cycles as f64);
        c("dram.feature_bytes", self.dram.feature_bytes);
        c("dram.structure_bytes", self.dram.structure_bytes);
        c("dram.weight_bytes", self.dram.weight_bytes);
        c("dram.output_bytes", self.dram.output_bytes);
        c("spill_bytes", self.spill_bytes);
        c("skip.normal", self.skip.normal);
        c("skip.delta", self.skip.delta);
        c("skip.skipped", self.skip.skipped);
    }
}

/// Simulator for the TaGNN accelerator (and its ablated variants).
#[derive(Debug, Clone)]
pub struct TagnnSimulator {
    config: AcceleratorConfig,
}

impl TagnnSimulator {
    /// Wraps a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates `workload` (measured over `graph`) on this configuration,
    /// planning windows on the fly. Callers holding prebuilt plans (e.g. a
    /// pipeline with a shared [`tagnn_graph::plan::PlanCache`]) should use
    /// [`Self::simulate_with_plans`].
    pub fn simulate(&self, graph: &DynamicGraph, workload: &Workload) -> SimReport {
        self.simulate_traced(graph, workload, None)
    }

    /// [`Self::simulate`] with an optional recorder: plans under a `plan`
    /// span, then simulates under [`Self::simulate_with_plans_traced`].
    pub fn simulate_traced(
        &self,
        graph: &DynamicGraph,
        workload: &Workload,
        rec: Option<&Recorder>,
    ) -> SimReport {
        let plans = WindowPlanner::new(workload.window).plan_graph_traced(graph, rec);
        self.simulate_with_plans_traced(graph, workload, &plans, rec)
    }

    /// Simulates `workload` on this configuration using prebuilt window
    /// plans (one per `graph.batches(workload.window)` window, in order).
    ///
    /// # Panics
    /// Panics if `plans` does not line up with the graph's windows.
    pub fn simulate_with_plans(
        &self,
        graph: &DynamicGraph,
        workload: &Workload,
        plans: &[Arc<WindowPlan>],
    ) -> SimReport {
        self.simulate_with_plans_traced(graph, workload, plans, None)
    }

    /// [`Self::simulate_with_plans`] with an optional recorder. When
    /// attached, the dispatch sweep, traffic model, compute model, and
    /// pipeline schedule run under `dispatch` / `traffic` /
    /// `compute_model` / `timeline` spans, and the finished report is
    /// published as `sim.*` counters and gauges. With `None` the report
    /// is identical to the untraced path.
    ///
    /// # Panics
    /// Panics if `plans` does not line up with the graph's windows.
    pub fn simulate_with_plans_traced(
        &self,
        graph: &DynamicGraph,
        workload: &Workload,
        plans: &[Arc<WindowPlan>],
        rec: Option<&Recorder>,
    ) -> SimReport {
        let cfg = &self.config;
        let hbm = HbmModel::new(cfg);
        let dcu = DcuModel::new(cfg);
        let arnn = ArnnModel::new(cfg);
        let msdl = MsdlModel::default();

        assert_eq!(
            plans.len(),
            graph.num_snapshots().div_ceil(workload.window),
            "one plan per window expected"
        );

        // --- Structural sweep over the prebuilt plans: per-window MSDL
        // work, dispatch balance, and the per-window shares used to
        // schedule the cross-window pipeline.
        let dispatch_span = obs_span(rec, "dispatch");
        let mut windows = 0u64;
        let mut classified_vertices = 0u64;
        let mut subgraph_edges = 0u64;
        let mut util_weighted = 0.0f64;
        let mut util_weight = 0.0f64;
        // Per-window estimates used to apportion the measured aggregates:
        // (msdl cycles, estimated loaded rows, estimated degree-weighted work).
        let mut shapes: Vec<(u64, u64, u64)> = Vec::new();
        for plan in plans {
            let s = plan.stats();
            windows += 1;
            classified_vertices += s.classified_vertices;
            subgraph_edges += s.subgraph_edges;

            let report = if cfg.balanced_dispatch {
                dispatch::balanced(&s.degree_items, cfg.num_dcus)
            } else {
                dispatch::round_robin(&s.degree_items, cfg.num_dcus)
            };
            util_weighted += report.utilization * report.total_work as f64;
            util_weight += report.total_work as f64;

            // Loaded-row estimate: the cold pass plus the affected rows of
            // the remaining snapshots.
            let msdl_w = msdl.total_cycles(s.classified_vertices, s.subgraph_edges, 1);
            shapes.push((
                msdl_w,
                s.cold_rows + s.affected_rows,
                report.total_work.max(1),
            ));
        }
        let utilization = if util_weight == 0.0 {
            1.0
        } else {
            util_weighted / util_weight
        };
        drop(dispatch_span);

        // --- Effective work counters under the ablation flags.
        let gnn_stats = if cfg.oadl_enabled {
            &workload.concurrent
        } else {
            &workload.reference
        };
        let rnn_stats = if cfg.adsc_enabled {
            &workload.concurrent
        } else {
            &workload.reference
        };

        // --- DRAM traffic, including capacity spills: when the layer-0
        // feature table outgrows the feature buffer's resident half, the
        // overflow fraction of would-be SRAM reuses must re-travel from HBM.
        let traffic_span = obs_span(rec, "traffic");
        let table_bytes = workload.num_vertices as u64 * workload.row_bytes();
        let resident_half = (cfg.buffers.feature_bytes / 2) as u64;
        let spill_fraction = if table_bytes > resident_half {
            1.0 - resident_half as f64 / table_bytes as f64
        } else {
            0.0
        };
        let spill_bytes = (gnn_stats.feature_rows_reused as f64
            * workload.row_bytes() as f64
            * spill_fraction) as u64;
        let dram = DramTraffic {
            feature_bytes: gnn_stats.feature_rows_loaded * workload.row_bytes() + spill_bytes,
            structure_bytes: gnn_stats.structure_words_loaded * ELEM_BYTES,
            weight_bytes: workload.weight_params * ELEM_BYTES,
            output_bytes: (workload.num_snapshots * workload.num_vertices * workload.hidden) as u64
                * ELEM_BYTES,
        };
        let feature_buf = PingPongBuffer::new(cfg.buffers.feature_bytes);
        let bursts = feature_buf.refills(dram.feature_bytes) + windows;
        let dram_cycles = hbm.stream_cycles(dram.total(), bursts);
        drop(traffic_span);

        // --- Compute cycles.
        let compute_span = obs_span(rec, "compute_model");
        let msdl_cycles = if cfg.oadl_enabled {
            msdl.total_cycles(classified_vertices, subgraph_edges, windows)
        } else {
            0
        };
        let agg_cycles = dcu.aggregation_cycles(gnn_stats.gnn_aggregate_macs, utilization);
        let comb_cycles = dcu.combination_cycles(gnn_stats.gnn_combine_macs, utilization);
        let rnn_cycles = dcu.rnn_cycles(rnn_stats.rnn_macs, utilization);
        let arnn_cycles = if cfg.adsc_enabled {
            arnn.total_cycles(
                rnn_stats.similarity_ops,
                rnn_stats.skip.delta,
                workload.hidden,
            )
        } else {
            0
        };

        let breakdown = CycleBreakdown {
            msdl: msdl_cycles,
            aggregation: agg_cycles,
            combination: comb_cycles,
            rnn: rnn_cycles,
            arnn: arnn_cycles,
            dram: dram_cycles,
        };
        drop(compute_span);

        // --- Cross-window pipeline schedule: apportion the aggregate
        // cycles over windows by their structural shares, then run the
        // double-buffered timeline (load i+1 overlaps compute i).
        let timeline_span = obs_span(rec, "timeline");
        let total_rows: u64 = shapes.iter().map(|s| s.1).sum::<u64>().max(1);
        let total_work: u64 = shapes.iter().map(|s| s.2).sum::<u64>().max(1);
        let compute_cycles_total = agg_cycles + comb_cycles + rnn_cycles + arnn_cycles;
        let wb_total = hbm.bandwidth_cycles(dram.output_bytes);
        let load_total = dram_cycles.saturating_sub(wb_total.min(dram_cycles / 4));
        let work: Vec<timeline::WindowWork> = shapes
            .iter()
            .map(|&(msdl_w, rows, dwork)| timeline::WindowWork {
                load_cycles: load_total * rows / total_rows,
                msdl_cycles: if cfg.oadl_enabled { msdl_w } else { 0 },
                compute_cycles: compute_cycles_total * dwork / total_work,
                writeback_cycles: wb_total / windows.max(1),
            })
            .collect();
        let schedule = timeline::simulate_timeline(&work);
        drop(timeline_span);
        let cycles = schedule.total_cycles.max(1);
        let time_s = cycles as f64 / cfg.cycles_per_sec();

        // On-chip accesses: every row touched (loaded or reused) is read
        // from SRAM by the compute pipeline at least once.
        let sram_bytes =
            (gnn_stats.feature_rows_loaded + gnn_stats.feature_rows_reused) * workload.row_bytes();
        let macs = gnn_stats.gnn_aggregate_macs + gnn_stats.gnn_combine_macs + rnn_stats.rnn_macs;
        let energy_mj =
            EnergyModel::fpga(cfg.power_w).energy_mj(time_s, macs, dram.total(), sram_bytes);

        let report = SimReport {
            name: cfg.name.clone(),
            workload: workload.name.clone(),
            cycles,
            time_ms: time_s * 1.0e3,
            breakdown,
            dram,
            energy_mj,
            dispatch_utilization: utilization,
            compute_stall_cycles: schedule.compute_stall_cycles,
            memory_idle_cycles: schedule.memory_idle_cycles,
            spill_bytes,
            skip: rnn_stats.skip,
            plan: PlanInstrumentation::from_plans(plans),
        };
        if let Some(rec) = rec {
            report.publish(rec, "sim");
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::generate::DatasetPreset;
    use tagnn_models::{ModelKind, SkipConfig};

    fn setup() -> (DynamicGraph, Workload) {
        let g = DatasetPreset::Gdelt.config_small(6).generate();
        let w = Workload::measure(
            &g,
            "GT",
            ModelKind::TGcn,
            8,
            3,
            SkipConfig::paper_default(),
            1,
        );
        (g, w)
    }

    #[test]
    fn produces_nonzero_cycles_and_energy() {
        let (g, w) = setup();
        let r = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        assert!(r.cycles > 0);
        assert!(r.time_ms > 0.0);
        assert!(r.energy_mj > 0.0);
        assert!(r.dram.total() > 0);
        assert!(r.dispatch_utilization > 0.0 && r.dispatch_utilization <= 1.0);
    }

    #[test]
    fn oadl_ablation_slows_the_run() {
        let (g, w) = setup();
        let base = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        let wo =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_oadl()).simulate(&g, &w);
        assert!(wo.time_ms > base.time_ms, "WO/OADL must be slower");
        assert!(wo.dram.feature_bytes > base.dram.feature_bytes);
    }

    #[test]
    fn adsc_ablation_increases_rnn_cycles() {
        let (g, w) = setup();
        let base = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        let wo =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_adsc()).simulate(&g, &w);
        assert!(wo.breakdown.rnn >= base.breakdown.rnn);
        assert!(wo.time_ms >= base.time_ms);
    }

    #[test]
    fn balanced_dispatch_helps_or_ties() {
        let (g, w) = setup();
        let base = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        let naive =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_balanced_dispatch())
                .simulate(&g, &w);
        assert!(base.dispatch_utilization >= naive.dispatch_utilization);
        assert!(base.time_ms <= naive.time_ms);
    }

    #[test]
    fn more_dcus_do_not_slow_down() {
        let (g, w) = setup();
        let few =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().with_dcus(2)).simulate(&g, &w);
        let many =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().with_dcus(16)).simulate(&g, &w);
        assert!(many.time_ms <= few.time_ms);
    }

    #[test]
    fn speedup_is_relative_time() {
        let (g, w) = setup();
        let base = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        let wo =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_oadl()).simulate(&g, &w);
        assert!((base.speedup_vs(&wo) - wo.time_ms / base.time_ms).abs() < 1e-12);
        assert!(base.speedup_vs(&wo) > 1.0);
    }

    #[test]
    fn small_buffers_spill_and_cost_time() {
        let (g, w) = setup();
        let base = TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(&g, &w);
        let mut tiny = AcceleratorConfig::tagnn_default();
        tiny.buffers.feature_bytes = 16 * 1024; // 8 KiB resident half
        let spilled = TagnnSimulator::new(tiny).simulate(&g, &w);
        assert!(spilled.spill_bytes > base.spill_bytes);
        assert!(spilled.dram.feature_bytes > base.dram.feature_bytes);
        assert!(spilled.time_ms >= base.time_ms);
    }

    #[test]
    fn report_is_deterministic() {
        let (g, w) = setup();
        let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
        assert_eq!(sim.simulate(&g, &w), sim.simulate(&g, &w));
    }

    #[test]
    fn prebuilt_plans_match_on_the_fly_planning() {
        let (g, w) = setup();
        let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
        let plans = WindowPlanner::new(w.window).plan_graph(&g);
        let fly = sim.simulate(&g, &w);
        let shared = sim.simulate_with_plans(&g, &w, &plans);
        assert_eq!(fly, shared);
        assert!(shared.plan.windows_planned > 0);
        assert!(shared.plan.vertices_classified > 0);
    }
}
