//! Cross-window pipeline timeline.
//!
//! TaGNN's ping-pong buffers let window `i+1`'s data load while window `i`
//! computes (§4's dataflow-style parallelism). This module models that
//! software-pipeline recurrence exactly:
//!
//! * the memory channel is serial: load `i+1` starts when load `i` ends;
//! * compute `i` starts when its own load has landed *and* the compute
//!   units have drained window `i-1`;
//! * write-back shares the memory channel with loads.
//!
//! The recurrence yields per-window finish times, total cycles, and the
//! stall cycles each side (memory starving compute, or compute
//! back-pressuring memory) spent waiting — the quantities behind the
//! "memory-bound vs compute-bound" crossovers in the sensitivity studies.

use serde::{Deserialize, Serialize};

/// Cycle costs of one window's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowWork {
    /// HBM cycles to land the window's inputs (features + structure).
    pub load_cycles: u64,
    /// MSDL classification/traversal cycles (overlaps with compute of the
    /// previous window, serialises with this window's compute).
    pub msdl_cycles: u64,
    /// DCU + ARNN compute cycles.
    pub compute_cycles: u64,
    /// HBM cycles to write the window's outputs back.
    pub writeback_cycles: u64,
}

impl WindowWork {
    /// Total standalone cycles of the window with no overlap at all.
    pub fn serial_cycles(&self) -> u64 {
        self.load_cycles + self.msdl_cycles + self.compute_cycles + self.writeback_cycles
    }
}

/// The simulated schedule of a window sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Cycle at which each window's compute (incl. MSDL) finishes.
    pub finish: Vec<u64>,
    /// Total cycles until the last write-back lands.
    pub total_cycles: u64,
    /// Cycles compute units sat idle waiting for data.
    pub compute_stall_cycles: u64,
    /// Cycles the memory channel sat idle waiting for buffer space.
    pub memory_idle_cycles: u64,
}

impl TimelineReport {
    /// Fraction of the schedule the compute side was stalled.
    pub fn compute_stall_ratio(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.compute_stall_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Simulates the double-buffered window pipeline.
pub fn simulate_timeline(windows: &[WindowWork]) -> TimelineReport {
    let mut finish = Vec::with_capacity(windows.len());
    let mut mem_free = 0u64; // when the memory channel is next available
    let mut compute_free = 0u64; // when the compute units are next available
    let mut compute_stall = 0u64;
    let mut memory_idle = 0u64;
    let mut total = 0u64;

    for (i, w) in windows.iter().enumerate() {
        // Load: memory channel is serial across windows; with one spare
        // ping-pong half, the load may run at most one window ahead of
        // compute. Window i's load lands in the half that window i-2's
        // data occupied, so it cannot start before the compute of the
        // window two back finished.
        let buffer_free = if i >= 2 { finish[i - 2] } else { 0 };
        let load_start = mem_free.max(buffer_free);
        // Waiting for a ping-pong half to drain is memory-channel idle
        // time: the channel is ready but has nowhere to put the data.
        memory_idle += load_start - mem_free;
        let load_end = load_start + w.load_cycles;

        // Compute (MSDL + DCUs + ARNN): needs its data and free units.
        let compute_start = load_end.max(compute_free);
        if load_end > compute_free {
            // Data arrived late: compute units starved.
            compute_stall += load_end - compute_free;
        }
        let compute_end = compute_start + w.msdl_cycles + w.compute_cycles;

        // Write-back drains through the output buffer on its own HBM
        // pseudo-channel, so it extends the tail but does not block the
        // next window's load.
        let wb_end = compute_end + w.writeback_cycles;

        mem_free = load_end;
        compute_free = compute_end;
        finish.push(compute_end);
        total = total.max(wb_end);
    }

    TimelineReport {
        finish,
        total_cycles: total,
        compute_stall_cycles: compute_stall,
        memory_idle_cycles: memory_idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(load: u64, msdl: u64, compute: u64, wb: u64) -> WindowWork {
        WindowWork {
            load_cycles: load,
            msdl_cycles: msdl,
            compute_cycles: compute,
            writeback_cycles: wb,
        }
    }

    #[test]
    fn single_window_is_serial() {
        let r = simulate_timeline(&[w(100, 10, 50, 5)]);
        assert_eq!(r.finish, vec![160]);
        assert_eq!(r.total_cycles, 165);
    }

    #[test]
    fn empty_timeline_is_free() {
        let r = simulate_timeline(&[]);
        assert_eq!(r.total_cycles, 0);
        assert!(r.finish.is_empty());
        assert_eq!(r.compute_stall_ratio(), 0.0);
    }

    #[test]
    fn compute_bound_pipeline_hides_loads() {
        // Loads are tiny; compute dominates, so total ~ sum of computes
        // plus the first load.
        let windows = vec![w(10, 0, 100, 0); 4];
        let r = simulate_timeline(&windows);
        assert_eq!(r.total_cycles, 10 + 400);
    }

    #[test]
    fn memory_bound_pipeline_is_load_limited() {
        // Compute is tiny; total ~ sum of loads plus the last compute+wb.
        let windows = vec![w(100, 0, 10, 0); 4];
        let r = simulate_timeline(&windows);
        assert_eq!(r.total_cycles, 400 + 10);
        assert!(r.compute_stall_cycles > 0, "compute must starve");
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let windows = vec![w(80, 10, 90, 5); 6];
        let r = simulate_timeline(&windows);
        let serial: u64 = windows.iter().map(WindowWork::serial_cycles).sum();
        assert!(
            r.total_cycles < serial,
            "overlap must save cycles: {} vs {serial}",
            r.total_cycles
        );
    }

    #[test]
    fn finish_times_are_monotone() {
        let windows = vec![w(30, 5, 40, 2), w(50, 5, 20, 2), w(10, 5, 70, 2)];
        let r = simulate_timeline(&windows);
        assert!(r.finish.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn prefetch_cannot_run_more_than_one_window_ahead() {
        // Two compute-heavy windows followed by load-heavy ones. An
        // uncapped memory channel would stream every later load during the
        // long computes (loads done by cycle 420) and finish at 2050; with
        // the one-window ping-pong cap, load i waits for compute i-2, so
        // the tail loads serialise against compute and the schedule ends
        // at 2320.
        let mut windows = vec![w(10, 0, 1000, 0); 2];
        windows.extend(vec![w(100, 0, 10, 0); 4]);
        let r = simulate_timeline(&windows);
        assert!(
            r.total_cycles > 2050,
            "uncapped prefetch hides the tail loads: {}",
            r.total_cycles
        );
        assert_eq!(r.total_cycles, 2320);
        assert!(
            r.memory_idle_cycles > 0,
            "the channel must wait for buffer space"
        );
    }

    #[test]
    fn capped_prefetch_matches_unbounded_when_memory_bound() {
        // When loads dominate, mem_free always exceeds the buffer gate and
        // the cap never binds: the schedule equals the serial-load bound.
        let windows = vec![w(100, 0, 10, 0); 5];
        let r = simulate_timeline(&windows);
        assert_eq!(r.total_cycles, 500 + 10);
    }

    #[test]
    fn stall_ratio_is_bounded() {
        let windows = vec![w(1000, 1, 1, 1); 3];
        let r = simulate_timeline(&windows);
        let ratio = r.compute_stall_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        assert!(ratio > 0.5, "heavily memory-bound: {ratio}");
    }
}
