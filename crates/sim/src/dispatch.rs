//! The Task Dispatcher: degree-balanced assignment of vertex tasks to DCUs.
//!
//! The paper's dispatcher "evenly divides the vertices within each batch
//! based on the number of neighbours associated with them" so no DCU idles
//! while another drains a hub vertex. We model it as longest-processing-time
//! (LPT) greedy assignment and compare against naive round-robin — the
//! difference is the dispatcher's contribution in Fig. 13(a).

use serde::{Deserialize, Serialize};

/// Outcome of distributing a batch of weighted tasks over compute units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispatchReport {
    /// Cycles until the most-loaded unit finishes (the batch's latency).
    pub makespan: u64,
    /// Sum of all task weights.
    pub total_work: u64,
    /// `total / (units * makespan)` in `[0, 1]`.
    pub utilization: f64,
}

fn report(loads: &[u64]) -> DispatchReport {
    let makespan = loads.iter().copied().max().unwrap_or(0);
    let total_work: u64 = loads.iter().sum();
    let utilization = if makespan == 0 {
        1.0
    } else {
        total_work as f64 / (loads.len() as u64 * makespan) as f64
    };
    DispatchReport {
        makespan,
        total_work,
        utilization,
    }
}

/// Degree-balanced (LPT greedy) dispatch: tasks sorted by weight descending,
/// each assigned to the currently least-loaded unit.
///
/// # Panics
/// Panics if `units == 0`.
pub fn balanced(work_items: &[u64], units: usize) -> DispatchReport {
    assert!(units > 0, "need at least one unit");
    let mut sorted: Vec<u64> = work_items.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; units];
    for w in sorted {
        // `units` is small (16ish); a linear min scan beats a heap here.
        let min = loads.iter_mut().min().expect("at least one unit");
        *min += w;
    }
    report(&loads)
}

/// Degree-balanced (LPT greedy) dispatch that returns the per-item unit
/// assignment instead of the aggregate report: `result[i]` is the unit
/// item `i` landed on. Deterministic — ties in weight break toward the
/// lower item index and ties in load toward the lower unit index — so
/// the same weights always produce the same assignment table. The serve
/// layer reuses this to build degree-balanced vertex→shard tables.
///
/// # Panics
/// Panics if `units == 0`.
pub fn balanced_assign(work_items: &[u64], units: usize) -> Vec<usize> {
    assert!(units > 0, "need at least one unit");
    let mut order: Vec<usize> = (0..work_items.len()).collect();
    order.sort_by(|&a, &b| work_items[b].cmp(&work_items[a]).then(a.cmp(&b)));
    let mut loads = vec![0u64; units];
    let mut assignment = vec![0usize; work_items.len()];
    for i in order {
        let unit = loads
            .iter()
            .enumerate()
            .min_by_key(|&(idx, &load)| (load, idx))
            .map(|(idx, _)| idx)
            .expect("at least one unit");
        assignment[i] = unit;
        loads[unit] += work_items[i];
    }
    assignment
}

/// Naive round-robin dispatch in arrival order.
///
/// # Panics
/// Panics if `units == 0`.
pub fn round_robin(work_items: &[u64], units: usize) -> DispatchReport {
    assert!(units > 0, "need at least one unit");
    let mut loads = vec![0u64; units];
    for (i, &w) in work_items.iter().enumerate() {
        loads[i % units] += w;
    }
    report(&loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_work_is_perfectly_balanced() {
        let items = vec![10u64; 32];
        let r = balanced(&items, 8);
        assert_eq!(r.makespan, 40);
        assert!((r.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_beats_round_robin_on_skew() {
        // One hub with most of the work followed by many small tasks —
        // round-robin keeps stacking onto unit 0's lane.
        let mut items = vec![1000u64];
        items.extend(std::iter::repeat_n(10, 99));
        let b = balanced(&items, 4);
        let rr = round_robin(&items, 4);
        assert!(b.makespan <= rr.makespan);
        assert!(b.utilization >= rr.utilization);
    }

    #[test]
    fn total_work_is_conserved() {
        let items = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let b = balanced(&items, 3);
        let rr = round_robin(&items, 3);
        assert_eq!(b.total_work, 31);
        assert_eq!(rr.total_work, 31);
    }

    #[test]
    fn empty_batch_is_free() {
        let r = balanced(&[], 4);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.utilization, 1.0);
    }

    #[test]
    fn single_unit_serialises() {
        let r = balanced(&[5, 5, 5], 1);
        assert_eq!(r.makespan, 15);
        assert!((r.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_lower_bound() {
        // Makespan can never undercut total/units or the largest item.
        let items = vec![7, 3, 9, 2, 8, 4];
        let r = balanced(&items, 3);
        assert!(r.makespan >= 33 / 3);
        assert!(r.makespan >= 9);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn rejects_zero_units() {
        let _ = balanced(&[1], 0);
    }

    #[test]
    fn assign_matches_balanced_makespan() {
        let items = vec![1000u64, 10, 10, 10, 900, 10, 10, 800, 10, 10];
        let units = 3;
        let assignment = balanced_assign(&items, units);
        assert_eq!(assignment.len(), items.len());
        let mut loads = vec![0u64; units];
        for (i, &u) in assignment.iter().enumerate() {
            assert!(u < units);
            loads[u] += items[i];
        }
        let makespan = loads.iter().copied().max().unwrap();
        assert_eq!(makespan, balanced(&items, units).makespan);
    }

    #[test]
    fn assign_is_deterministic() {
        let items: Vec<u64> = (0..64).map(|i| (i * 37 + 11) % 19).collect();
        let a = balanced_assign(&items, 4);
        let b = balanced_assign(&items, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn assign_spreads_hubs_across_units() {
        // Four equal hubs over four units must land on distinct units.
        let items = vec![100u64, 100, 100, 100];
        let mut assignment = balanced_assign(&items, 4);
        assignment.sort_unstable();
        assert_eq!(assignment, vec![0, 1, 2, 3]);
    }
}
