//! Discrete pipeline simulation with finite inter-stage queues.
//!
//! The analytic models elsewhere assume perfectly balanced pipelines; this
//! module simulates the real thing: items with heterogeneous service times
//! flow through a chain of stages separated by bounded FIFOs, so a slow
//! stage back-pressures its predecessors exactly as a hardware FIFO fills.
//! The MSDL stage-balance study (experiment `extD`) uses it to show why
//! the paper replicates the `Fetch_Neighbors`/`Fetch_Features` units
//! (§4.1).
//!
//! The recurrence: item `i` departs stage `s` at
//!
//! ```text
//! depart[s][i] = max(arrive, blocked) + service(s, i)
//!   arrive  = max(depart[s-1][i], depart[s][i-1])        // data + unit free
//!   blocked = depart[s+1][i - capacity(s)]               // FIFO full
//! ```
//!
//! computed stage-major with ring buffers, O(items x stages).

use serde::{Deserialize, Serialize};

/// One pipeline stage: a name, and the depth of the FIFO between it and
/// the next stage (the last stage drains into an unbounded sink).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Display name (e.g. "Fetch_Neighbors").
    pub name: String,
    /// Capacity of the output FIFO feeding the next stage.
    pub fifo_depth: usize,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(name: &str, fifo_depth: usize) -> Self {
        Self {
            name: name.to_string(),
            fifo_depth: fifo_depth.max(1),
        }
    }
}

/// Per-stage outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Cycles the stage spent servicing items.
    pub busy_cycles: u64,
    /// Cycles the stage sat ready but starved or blocked.
    pub idle_cycles: u64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Cycle at which the last item left the last stage.
    pub total_cycles: u64,
    /// Per-stage busy/idle accounting.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// The stage with the highest busy fraction (the bottleneck).
    pub fn bottleneck(&self) -> Option<&StageReport> {
        self.stages.iter().max_by_key(|s| s.busy_cycles)
    }

    /// Utilisation of stage `s` in `[0, 1]`.
    pub fn utilization(&self, s: usize) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.stages[s].busy_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Simulates `num_items` items flowing through `stages`, with
/// `service(stage_index, item_index)` giving each item's service time at
/// each stage (0 is allowed and models a pass-through).
///
/// # Panics
/// Panics if `stages` is empty.
pub fn simulate_pipeline(
    stages: &[StageSpec],
    num_items: u64,
    mut service: impl FnMut(usize, u64) -> u64,
) -> PipelineReport {
    assert!(!stages.is_empty(), "need at least one stage");
    let n = num_items as usize;
    let s_count = stages.len();
    let mut busy = vec![0u64; s_count];

    // Item-major evaluation: for each item, walk stages front to back.
    // Blocking by stage s+1 depends on departures of earlier items from
    // s+1, which are already in `history` because those items fully
    // preceded this one through every stage.
    let mut last_depart_per_stage = vec![0u64; s_count];
    let mut history: Vec<Vec<u64>> = vec![Vec::with_capacity(n); s_count];
    let mut total = 0u64;
    for i in 0..n {
        let mut upstream_done = 0u64; // departure from the previous stage
        for s in 0..s_count {
            let unit_free = last_depart_per_stage[s];
            let svc = service(s, i as u64);
            let finished = upstream_done.max(unit_free) + svc;
            // Finite FIFO to the next stage: this item cannot *depart*
            // stage s before item i - depth has departed stage s+1 and
            // freed a slot; until then it blocks the unit.
            let depart = if s + 1 < s_count && i >= stages[s].fifo_depth {
                finished.max(history[s + 1][i - stages[s].fifo_depth])
            } else {
                finished
            };
            busy[s] += svc;
            last_depart_per_stage[s] = depart;
            history[s].push(depart);
            upstream_done = depart;
        }
        total = total.max(upstream_done);
    }

    let stage_reports = stages
        .iter()
        .enumerate()
        .map(|(s, spec)| StageReport {
            name: spec.name.clone(),
            busy_cycles: busy[s],
            idle_cycles: total.saturating_sub(busy[s]),
        })
        .collect();
    PipelineReport {
        total_cycles: total,
        stages: stage_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(n: usize, depth: usize) -> Vec<StageSpec> {
        (0..n)
            .map(|i| StageSpec::new(&format!("s{i}"), depth))
            .collect()
    }

    #[test]
    fn uniform_pipeline_approaches_one_item_per_cycle() {
        // 4 stages, unit service: total = items + depth - 1.
        let r = simulate_pipeline(&stages(4, 8), 100, |_, _| 1);
        assert_eq!(r.total_cycles, 100 + 3);
    }

    #[test]
    fn bottleneck_stage_sets_throughput() {
        // Stage 1 takes 3 cycles per item: total ~ 3 * items.
        let r = simulate_pipeline(&stages(3, 8), 50, |s, _| if s == 1 { 3 } else { 1 });
        assert!(r.total_cycles >= 150, "total {}", r.total_cycles);
        assert!(r.total_cycles <= 150 + 10);
        assert_eq!(r.bottleneck().unwrap().name, "s1");
    }

    #[test]
    fn single_stage_is_serial() {
        let r = simulate_pipeline(&stages(1, 1), 10, |_, _| 7);
        assert_eq!(r.total_cycles, 70);
        assert_eq!(r.stages[0].busy_cycles, 70);
        assert_eq!(r.stages[0].idle_cycles, 0);
    }

    #[test]
    fn zero_items_is_free() {
        let r = simulate_pipeline(&stages(3, 2), 0, |_, _| 1);
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn heterogeneous_items_stall_the_pipeline() {
        // Every 10th item is expensive at stage 0; deep FIFOs absorb some
        // of the burstiness, shallow ones do not.
        let svc = |s: usize, i: u64| {
            if s == 0 && i.is_multiple_of(10) {
                20
            } else {
                1
            }
        };
        let shallow = simulate_pipeline(&stages(3, 1), 100, svc);
        let deep = simulate_pipeline(&stages(3, 32), 100, svc);
        assert!(deep.total_cycles <= shallow.total_cycles);
    }

    #[test]
    fn utilization_is_bounded() {
        let r = simulate_pipeline(&stages(4, 4), 64, |s, i| 1 + (s as u64 + i) % 3);
        for s in 0..4 {
            let u = r.utilization(s);
            assert!((0.0..=1.0).contains(&u), "stage {s}: {u}");
        }
    }

    #[test]
    fn pass_through_stage_costs_nothing() {
        let with = simulate_pipeline(&stages(3, 4), 40, |s, _| if s == 1 { 0 } else { 2 });
        let without = simulate_pipeline(&stages(2, 4), 40, |_, _| 2);
        assert_eq!(with.total_cycles, without.total_cycles);
    }
}
