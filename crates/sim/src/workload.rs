//! Workload descriptors: measured work counts plus graph/model metadata,
//! the common currency between the engines and every platform model.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tagnn_graph::plan::{WindowPlan, WindowPlanner};
use tagnn_graph::DynamicGraph;
use tagnn_models::{
    ConcurrentEngine, DgnnModel, ExecutionStats, ModelKind, ReferenceEngine, SkipConfig,
};
use tagnn_obs::{span as obs_span, Recorder};

/// Bytes per feature element (f32).
pub const ELEM_BYTES: u64 = 4;

/// A measured workload: metadata plus the work counters of both execution
/// patterns over the same graph and weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Dataset label (e.g. "HP").
    pub name: String,
    /// Model family.
    pub model: ModelKind,
    /// Vertex universe size.
    pub num_vertices: usize,
    /// Total directed edges across all snapshots.
    pub total_edges: usize,
    /// Input feature dimensionality D.
    pub feature_dim: usize,
    /// Hidden (= GNN output) dimensionality.
    pub hidden: usize,
    /// Number of snapshots T.
    pub num_snapshots: usize,
    /// Window size K used for the concurrent pattern.
    pub window: usize,
    /// GCN layer count of the model.
    pub gnn_layers: usize,
    /// Total learned parameters (GCN weights + RNN weights), for weight
    /// traffic accounting.
    pub weight_params: u64,
    /// Work counters of the topology-aware concurrent execution (TaGNN).
    pub concurrent: ExecutionStats,
    /// Work counters of snapshot-by-snapshot execution (all baselines).
    pub reference: ExecutionStats,
}

impl Workload {
    /// Runs both engines over `graph` and packages their counters,
    /// planning windows on the fly. Callers holding prebuilt plans should
    /// use [`Self::measure_with_plans`].
    pub fn measure(
        graph: &DynamicGraph,
        name: &str,
        model_kind: ModelKind,
        hidden: usize,
        window: usize,
        skip: SkipConfig,
        seed: u64,
    ) -> Self {
        let plans = WindowPlanner::new(window).plan_graph(graph);
        Self::measure_with_plans(graph, name, model_kind, hidden, window, skip, seed, &plans)
    }

    /// Runs both engines over `graph` and packages their counters, feeding
    /// the concurrent engine prebuilt window plans (the reference engine
    /// is snapshot-by-snapshot and takes no plans).
    ///
    /// # Panics
    /// Panics if `plans` does not line up with `graph.batches(window)`.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_with_plans(
        graph: &DynamicGraph,
        name: &str,
        model_kind: ModelKind,
        hidden: usize,
        window: usize,
        skip: SkipConfig,
        seed: u64,
        plans: &[Arc<WindowPlan>],
    ) -> Self {
        Self::measure_with_plans_traced(
            graph, name, model_kind, hidden, window, skip, seed, plans, None,
        )
    }

    /// [`Self::measure_with_plans`] with an optional recorder: the two
    /// engine runs execute under `engine_reference` / `engine_concurrent`
    /// spans (each engine publishes its own stats and phase spans). With
    /// `None` this is exactly `measure_with_plans`.
    ///
    /// # Panics
    /// Panics if `plans` does not line up with `graph.batches(window)`.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_with_plans_traced(
        graph: &DynamicGraph,
        name: &str,
        model_kind: ModelKind,
        hidden: usize,
        window: usize,
        skip: SkipConfig,
        seed: u64,
        plans: &[Arc<WindowPlan>],
        rec: Option<&Recorder>,
    ) -> Self {
        let model = DgnnModel::new(model_kind, graph.feature_dim(), hidden, seed);
        let gnn_layers = model.layers().len();
        let weight_params: u64 = model
            .layers()
            .iter()
            .map(|l| (l.in_dim() * l.out_dim()) as u64)
            .sum::<u64>()
            + (model.cell().in_dim() as u64 + hidden as u64 + 1)
                * (model.cell().kind().gates() * hidden) as u64;
        let reference = {
            let _span = obs_span(rec, "engine_reference");
            ReferenceEngine::new(model.clone())
                .run_traced(graph, rec)
                .stats
        };
        let concurrent = {
            let _span = obs_span(rec, "engine_concurrent");
            ConcurrentEngine::with_window(model, skip, window)
                .run_with_plans_traced(graph, plans, rec)
                .stats
        };
        Self {
            name: name.to_string(),
            model: model_kind,
            num_vertices: graph.num_vertices(),
            total_edges: graph.total_edges(),
            feature_dim: graph.feature_dim(),
            hidden,
            num_snapshots: graph.num_snapshots(),
            window,
            gnn_layers,
            weight_params,
            concurrent,
            reference,
        }
    }

    /// Average feature-row payload in bytes (layer-0 rows dominate traffic;
    /// deeper layers move `hidden`-wide rows, so use the mean of both).
    /// Multiplying by `ELEM_BYTES` before halving keeps the half-element
    /// that an odd dimension sum would otherwise truncate away.
    pub fn row_bytes(&self) -> u64 {
        (self.feature_dim as u64 + self.hidden as u64) * ELEM_BYTES / 2
    }

    /// Bytes of DRAM traffic implied by a stats record under this
    /// workload's dimensions: feature rows plus structure words.
    pub fn dram_bytes(&self, stats: &ExecutionStats) -> u64 {
        stats.feature_rows_loaded * self.row_bytes() + stats.structure_words_loaded * ELEM_BYTES
    }

    /// Bytes of traffic the concurrent pattern avoided versus loading every
    /// row it touched.
    pub fn reused_bytes(&self, stats: &ExecutionStats) -> u64 {
        stats.feature_rows_reused * self.row_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagnn_graph::generate::GeneratorConfig;

    fn workload() -> Workload {
        let g = GeneratorConfig::tiny().generate();
        Workload::measure(
            &g,
            "tiny",
            ModelKind::TGcn,
            6,
            3,
            SkipConfig::paper_default(),
            1,
        )
    }

    #[test]
    fn captures_metadata() {
        let w = workload();
        assert_eq!(w.name, "tiny");
        assert_eq!(w.num_vertices, 64);
        assert_eq!(w.feature_dim, 8);
        assert_eq!(w.hidden, 6);
        assert_eq!(w.num_snapshots, 6);
        assert_eq!(w.window, 3);
    }

    #[test]
    fn concurrent_does_less_traffic_than_reference() {
        let w = workload();
        assert!(w.dram_bytes(&w.concurrent) < w.dram_bytes(&w.reference));
        assert!(w.reused_bytes(&w.concurrent) > 0);
        assert_eq!(w.reused_bytes(&w.reference), 0);
    }

    #[test]
    fn row_bytes_mixes_dims() {
        let w = workload();
        assert_eq!(w.row_bytes(), (8 + 6) / 2 * 4);
    }

    #[test]
    fn row_bytes_keeps_the_half_element_of_odd_dimension_sums() {
        let g = GeneratorConfig::tiny().generate(); // feature_dim = 8
        let w = Workload::measure(&g, "odd", ModelKind::TGcn, 7, 3, SkipConfig::disabled(), 1);
        // (8 + 7) elements averaged over two layers is 7.5 elements =
        // 30 bytes; integer-dividing the element count first would drop
        // half an element and report 28.
        assert_eq!(w.row_bytes(), (8 + 7) * 4 / 2);
        assert_eq!(w.row_bytes(), 30);
    }

    #[test]
    fn measurement_is_deterministic() {
        let g = GeneratorConfig::tiny().generate();
        let a = Workload::measure(&g, "x", ModelKind::CdGcn, 4, 4, SkipConfig::disabled(), 2);
        let mut b = Workload::measure(&g, "x", ModelKind::CdGcn, 4, 4, SkipConfig::disabled(), 2);
        // Wall-clock differs run to run; compare everything else.
        b.concurrent.wall_ns = a.concurrent.wall_ns;
        b.reference.wall_ns = a.reference.wall_ns;
        assert_eq!(a, b);
    }

    #[test]
    fn measure_with_plans_matches_measure() {
        let g = GeneratorConfig::tiny().generate();
        let plans = WindowPlanner::new(3).plan_graph(&g);
        let a = Workload::measure(&g, "tiny", ModelKind::TGcn, 6, 3, SkipConfig::disabled(), 1);
        let mut b = Workload::measure_with_plans(
            &g,
            "tiny",
            ModelKind::TGcn,
            6,
            3,
            SkipConfig::disabled(),
            1,
            &plans,
        );
        b.concurrent.wall_ns = a.concurrent.wall_ns;
        b.reference.wall_ns = a.reference.wall_ns;
        assert_eq!(a, b);
    }
}
