//! Off-chip (HBM) memory model and on-chip ping-pong buffers.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Cumulative DRAM traffic by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Vertex feature rows.
    pub feature_bytes: u64,
    /// Graph structure (offsets, neighbour ids, O-CSR arrays).
    pub structure_bytes: u64,
    /// Model weights.
    pub weight_bytes: u64,
    /// Result write-back.
    pub output_bytes: u64,
}

impl DramTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.feature_bytes + self.structure_bytes + self.weight_bytes + self.output_bytes
    }

    /// Merges another tally.
    pub fn merge(&mut self, other: &DramTraffic) {
        self.feature_bytes += other.feature_bytes;
        self.structure_bytes += other.structure_bytes;
        self.weight_bytes += other.weight_bytes;
        self.output_bytes += other.output_bytes;
    }
}

/// HBM timing model: latency plus bandwidth-limited streaming.
#[derive(Debug, Clone, Copy)]
pub struct HbmModel {
    bytes_per_cycle: f64,
    latency_cycles: f64,
}

impl HbmModel {
    /// Derives the model from an accelerator configuration.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            bytes_per_cycle: cfg.bytes_per_cycle(),
            latency_cycles: cfg.hbm_latency_ns / cfg.clock_ns(),
        }
    }

    /// Cycles to stream `bytes` as `bursts` independent transfers. The
    /// paper's ping-pong buffering hides latency for all but the first
    /// burst of a stream, so only a single latency is charged per call.
    pub fn stream_cycles(&self, bytes: u64, bursts: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let fill = self.latency_cycles;
        let stream = bytes as f64 / self.bytes_per_cycle;
        // Non-contiguous bursts cost a fraction of the latency each (row
        // activations), which is what makes irregular access expensive.
        let irregularity = (bursts.saturating_sub(1)) as f64 * self.latency_cycles * 0.25;
        (fill + stream + irregularity).ceil() as u64
    }

    /// Bandwidth-only lower bound (fully regular streaming).
    pub fn bandwidth_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

/// A ping-pong (double-buffered) on-chip buffer: while one half drains into
/// the compute pipeline the other half fills from HBM.
#[derive(Debug, Clone, Copy)]
pub struct PingPongBuffer {
    half_bytes: usize,
}

impl PingPongBuffer {
    /// Splits `capacity_bytes` into two halves.
    ///
    /// # Panics
    /// Panics if the capacity cannot hold two halves.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(
            capacity_bytes >= 2,
            "capacity too small for double buffering"
        );
        Self {
            half_bytes: capacity_bytes / 2,
        }
    }

    /// Usable bytes per phase.
    pub fn half_bytes(&self) -> usize {
        self.half_bytes
    }

    /// Number of refills needed to pass `working_set` bytes through the
    /// buffer (each refill is one burst the HBM model charges for).
    pub fn refills(&self, working_set: u64) -> u64 {
        working_set.div_ceil(self.half_bytes as u64).max(1)
    }

    /// Whether a working set fits entirely in one half (single fill, fully
    /// overlapped with compute afterwards).
    pub fn fits(&self, working_set: u64) -> bool {
        working_set <= self.half_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> HbmModel {
        HbmModel::new(&AcceleratorConfig::tagnn_default())
    }

    #[test]
    fn traffic_totals_and_merge() {
        let mut t = DramTraffic {
            feature_bytes: 10,
            structure_bytes: 5,
            ..Default::default()
        };
        t.merge(&DramTraffic {
            weight_bytes: 3,
            output_bytes: 2,
            ..Default::default()
        });
        assert_eq!(t.total(), 20);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(hbm().stream_cycles(0, 0), 0);
    }

    #[test]
    fn streaming_scales_with_bytes() {
        let m = hbm();
        let small = m.stream_cycles(1024, 1);
        let large = m.stream_cycles(1024 * 1024, 1);
        assert!(large > small * 10);
    }

    #[test]
    fn irregular_bursts_cost_more() {
        let m = hbm();
        let regular = m.stream_cycles(1 << 20, 1);
        let irregular = m.stream_cycles(1 << 20, 1000);
        assert!(irregular > regular, "burst fragmentation must cost cycles");
    }

    #[test]
    fn bandwidth_bound_is_lower_bound() {
        let m = hbm();
        assert!(m.bandwidth_cycles(1 << 20) <= m.stream_cycles(1 << 20, 1));
    }

    #[test]
    fn ping_pong_refills() {
        let b = PingPongBuffer::new(1024);
        assert_eq!(b.half_bytes(), 512);
        assert!(b.fits(512));
        assert!(!b.fits(513));
        assert_eq!(b.refills(2048), 4);
        assert_eq!(b.refills(0), 1);
    }
}
