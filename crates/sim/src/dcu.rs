//! The DGNN Computation Unit: CPE (MAC-array) and APE (adder-tree) cycle
//! models.
//!
//! Each DCU pairs Combination Processing Elements executing row-wise matrix
//! multiplication with Aggregation Processing Elements summing neighbour
//! features through a parallel adder tree (Fig. 7a). Cell-update arithmetic
//! of the Adaptive RNN Unit also executes on the CPE array, as in the paper.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Aggregate CPE/APE throughput of the whole DCU array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcuModel {
    /// Total combination MACs retired per cycle.
    pub total_cpes: usize,
    /// Total aggregation adds retired per cycle.
    pub total_apes: usize,
}

impl DcuModel {
    /// Derives throughput from the accelerator configuration.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            total_cpes: cfg.num_dcus * cfg.cpes_per_dcu,
            total_apes: cfg.num_dcus * cfg.apes_per_dcu,
        }
    }

    /// Cycles to retire `macs` aggregation operations at a given dispatch
    /// utilisation (load imbalance stretches the makespan).
    pub fn aggregation_cycles(&self, macs: u64, utilization: f64) -> u64 {
        cycles(macs, self.total_apes, utilization)
    }

    /// Cycles to retire `macs` combination operations.
    pub fn combination_cycles(&self, macs: u64, utilization: f64) -> u64 {
        cycles(macs, self.total_cpes, utilization)
    }

    /// Cycles to retire `macs` RNN cell-update operations (CPE array).
    pub fn rnn_cycles(&self, macs: u64, utilization: f64) -> u64 {
        cycles(macs, self.total_cpes, utilization)
    }
}

fn cycles(ops: u64, per_cycle: usize, utilization: f64) -> u64 {
    if ops == 0 {
        return 0;
    }
    let eff = (per_cycle as f64 * utilization.clamp(0.05, 1.0)).max(1.0);
    (ops as f64 / eff).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DcuModel {
        DcuModel::new(&AcceleratorConfig::tagnn_default())
    }

    #[test]
    fn throughput_matches_table4() {
        let m = model();
        assert_eq!(m.total_cpes, 16 * 256);
        assert_eq!(m.total_apes, 16 * 128);
    }

    #[test]
    fn zero_work_is_free() {
        let m = model();
        assert_eq!(m.aggregation_cycles(0, 1.0), 0);
        assert_eq!(m.combination_cycles(0, 1.0), 0);
    }

    #[test]
    fn cycles_scale_inverse_with_throughput() {
        let m = model();
        let macs = 1_000_000;
        assert!(m.aggregation_cycles(macs, 1.0) > m.combination_cycles(macs, 1.0));
    }

    #[test]
    fn poor_utilization_costs_cycles() {
        let m = model();
        assert!(m.combination_cycles(1 << 20, 0.5) > m.combination_cycles(1 << 20, 1.0));
    }

    #[test]
    fn utilization_is_clamped() {
        let m = model();
        // Nonsense utilisations do not divide by zero or speed things up.
        assert!(m.rnn_cycles(1000, 0.0) >= m.rnn_cycles(1000, 0.05));
        assert_eq!(m.rnn_cycles(1000, 2.0), m.rnn_cycles(1000, 1.0));
    }
}
