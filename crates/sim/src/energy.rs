//! Energy accounting: static board power plus dynamic per-MAC and per-byte
//! components.
//!
//! Constants follow the usual architecture-evaluation conventions (a DRAM
//! byte costs orders of magnitude more than a MAC); absolute joules are not
//! the reproduction target, only the cross-platform ratios of Fig. 11.

use serde::{Deserialize, Serialize};

/// Energy model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Static (leakage + board) power in watts.
    pub static_w: f64,
    /// Energy per MAC in picojoules.
    pub pj_per_mac: f64,
    /// Energy per DRAM byte in picojoules.
    pub pj_per_dram_byte: f64,
    /// Energy per on-chip SRAM byte in picojoules.
    pub pj_per_sram_byte: f64,
}

impl EnergyModel {
    /// FPGA-class constants for the TaGNN board.
    pub fn fpga(static_w: f64) -> Self {
        Self {
            static_w,
            pj_per_mac: 2.0,
            pj_per_dram_byte: 40.0,
            pj_per_sram_byte: 1.0,
        }
    }

    /// ASIC-class constants (E-DGCN, Cambricon-DG).
    pub fn asic(static_w: f64) -> Self {
        Self {
            static_w,
            pj_per_mac: 0.8,
            pj_per_dram_byte: 40.0,
            pj_per_sram_byte: 0.5,
        }
    }

    /// General-purpose processor constants (CPU/GPU): instruction and
    /// cache-hierarchy overheads inflate the per-op energy substantially.
    pub fn processor(static_w: f64) -> Self {
        Self {
            static_w,
            pj_per_mac: 25.0,
            pj_per_dram_byte: 60.0,
            pj_per_sram_byte: 5.0,
        }
    }

    /// Total energy in millijoules for a run of `time_s` seconds moving
    /// `dram_bytes` + `sram_bytes` and retiring `macs`.
    pub fn energy_mj(&self, time_s: f64, macs: u64, dram_bytes: u64, sram_bytes: u64) -> f64 {
        let static_mj = self.static_w * time_s * 1.0e3;
        let dynamic_pj = macs as f64 * self.pj_per_mac
            + dram_bytes as f64 * self.pj_per_dram_byte
            + sram_bytes as f64 * self.pj_per_sram_byte;
        static_mj + dynamic_pj * 1.0e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_term_scales_with_time() {
        let m = EnergyModel::fpga(30.0);
        let short = m.energy_mj(0.001, 0, 0, 0);
        let long = m.energy_mj(0.01, 0, 0, 0);
        assert!((long / short - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dram_dominates_sram_per_byte() {
        let m = EnergyModel::fpga(0.0);
        let dram = m.energy_mj(0.0, 0, 1_000_000, 0);
        let sram = m.energy_mj(0.0, 0, 0, 1_000_000);
        assert!(dram > 10.0 * sram);
    }

    #[test]
    fn processor_macs_cost_more_than_fpga_macs() {
        let f = EnergyModel::fpga(0.0);
        let p = EnergyModel::processor(0.0);
        assert!(p.energy_mj(0.0, 1 << 20, 0, 0) > f.energy_mj(0.0, 1 << 20, 0, 0));
    }

    #[test]
    fn zero_run_costs_nothing() {
        let m = EnergyModel::asic(10.0);
        assert_eq!(m.energy_mj(0.0, 0, 0, 0), 0.0);
    }
}
