#![warn(missing_docs)]

//! Cycle-approximate simulator of the TaGNN accelerator and analytic cost
//! models of every baseline platform the paper compares against.
//!
//! The paper evaluates TaGNN on a Xilinx Alveo U280; no FPGA is available
//! here, so this crate reproduces the evaluation with a counter-driven
//! performance model: the software engines (`tagnn-models`) report exactly
//! *what work was done* (MACs, feature rows fetched/reused, cells
//! skipped), and the simulator maps that work onto the hardware
//! configuration of Table 4 — clock, MAC counts, HBM bandwidth, buffer
//! capacities, pipeline structure — to produce cycles, per-unit breakdowns,
//! DRAM traffic, and energy. Baseline accelerators and the CPU/GPU software
//! systems are modelled the same way with their published configurations
//! and execution patterns (snapshot-by-snapshot, no reuse, no skipping).
//!
//! Absolute numbers are not the target; the reproduced quantities are the
//! *shapes* of the paper's figures: who wins, by roughly what factor, and
//! where the crossovers fall.

pub mod accel;
pub mod arnn;
pub mod baselines;
pub mod config;
pub mod dcu;
pub mod dispatch;
pub mod energy;
pub mod event;
pub mod memory;
pub mod msdl;
pub mod resource;
pub mod timeline;
pub mod workload;

pub use accel::{SimReport, TagnnSimulator};
pub use config::AcceleratorConfig;
pub use workload::Workload;
