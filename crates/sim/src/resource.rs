//! FPGA resource estimation — the Table 3 reproduction.
//!
//! Without a Vivado run, resource usage is estimated from architectural
//! counts: MACs and SCU lanes consume DSPs, datapaths and control consume
//! LUT/FF, small buffers map to BRAM, and the large feature/O-CSR banks
//! (replicated across DCUs for port bandwidth) map to UltraRAM. Per-model
//! terms scale with GCN depth and recurrent-cell complexity, which is what
//! differentiates the three columns of Table 3 (GC-LSTM's graph-conv-
//! embedded LSTM is the largest, T-GCN's two-layer GRU the smallest).

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};
use tagnn_models::ModelKind;

/// Alveo U280 capacities as stated in §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaCapacity {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAM in bytes.
    pub bram_bytes: u64,
    /// UltraRAM in bytes.
    pub uram_bytes: u64,
}

impl FpgaCapacity {
    /// The XCU280 as described by the paper (1.08 M LUTs, 4.5 MB BRAM,
    /// 30 MB UltraRAM, 9,024 DSPs).
    pub fn u280() -> Self {
        Self {
            luts: 1_080_000,
            ffs: 2_607_000,
            dsps: 9_024,
            bram_bytes: 4_500_000,
            uram_bytes: 30_000_000,
        }
    }
}

/// Estimated utilisation percentages (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// DSP slice utilisation (%).
    pub dsp_pct: f64,
    /// LUT utilisation (%).
    pub lut_pct: f64,
    /// Flip-flop utilisation (%).
    pub ff_pct: f64,
    /// BRAM utilisation (%).
    pub bram_pct: f64,
    /// UltraRAM utilisation (%).
    pub uram_pct: f64,
}

/// Per-model scaling of the recurrent datapath (GC-LSTM's graph-conv-
/// embedded cell is the heaviest; T-GCN's GRU the lightest).
fn cell_complexity(model: ModelKind) -> f64 {
    match model {
        ModelKind::CdGcn => 1.0,
        ModelKind::GcLstm => 1.3,
        ModelKind::TGcn => 0.75,
    }
}

/// Estimates resource utilisation of `cfg` synthesised for `model` on the
/// given device.
pub fn estimate(cfg: &AcceleratorConfig, model: ModelKind, device: FpgaCapacity) -> ResourceReport {
    let layers = model.num_gcn_layers() as f64;
    let gates = model.rnn_kind().gates() as f64;
    let cell = cell_complexity(model);
    let macs = cfg.num_macs as f64;
    let scu = cfg.scu_lanes as f64;
    let dcus = cfg.num_dcus as f64;

    // DSPs: MAC array + similarity lanes + gate-activation pipelines.
    let dsps = macs * 1.45 + scu * 1.0 + gates * cell * 180.0 + layers * 60.0;
    // LUTs: datapath muxing per MAC, MSDL pipelines, dispatcher, per-DCU
    // control, and the adaptive-mode state machines.
    let luts = macs * 75.0
        + dcus * 4_000.0
        + scu * 100.0
        + gates * cell * 9_000.0
        + layers * 7_000.0
        + 60_000.0;
    // FFs: pipeline registers track the LUT structure at roughly one
    // register per LUT-level plus the private registers of each DCU.
    let ffs = macs * 120.0
        + dcus * 9_000.0
        + scu * 150.0
        + gates * cell * 14_000.0
        + layers * 12_000.0
        + 120_000.0;
    // BRAM: the small FIFOs/buffers plus per-layer ping-pong staging.
    let bram = (cfg.buffers.task_fifo_bytes
        + cfg.buffers.intermediate_bytes
        + cfg.buffers.structure_bytes
        + cfg.buffers.output_bytes) as f64
        + layers * 360_000.0
        + gates * cell * 220_000.0;
    // URAM: feature + O-CSR banks, replicated across DCU pairs for port
    // bandwidth, plus weight storage scaling with the model.
    let uram = (cfg.buffers.feature_bytes + cfg.buffers.ocsr_table_bytes) as f64
        * (dcus / 2.0 - 1.0).max(1.0)
        + layers * 350_000.0
        + gates * cell * 450_000.0;

    ResourceReport {
        dsp_pct: 100.0 * dsps / device.dsps as f64,
        lut_pct: 100.0 * luts / device.luts as f64,
        ff_pct: 100.0 * ffs / device.ffs as f64,
        bram_pct: 100.0 * bram / device.bram_bytes as f64,
        uram_pct: 100.0 * uram / device.uram_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(model: ModelKind) -> ResourceReport {
        estimate(
            &AcceleratorConfig::tagnn_default(),
            model,
            FpgaCapacity::u280(),
        )
    }

    #[test]
    fn utilisation_lands_in_table3_bands() {
        for model in ModelKind::ALL {
            let r = report(model);
            assert!(
                (65.0..=92.0).contains(&r.dsp_pct),
                "{model:?} DSP {}",
                r.dsp_pct
            );
            assert!(
                (33.0..=55.0).contains(&r.lut_pct),
                "{model:?} LUT {}",
                r.lut_pct
            );
            assert!(
                (22.0..=42.0).contains(&r.ff_pct),
                "{model:?} FF {}",
                r.ff_pct
            );
            assert!(
                (50.0..=80.0).contains(&r.bram_pct),
                "{model:?} BRAM {}",
                r.bram_pct
            );
            assert!(
                (75.0..=95.0).contains(&r.uram_pct),
                "{model:?} URAM {}",
                r.uram_pct
            );
        }
    }

    #[test]
    fn gclstm_is_largest_tgcn_smallest() {
        // Table 3 orders every row GC-LSTM > CD-GCN > T-GCN.
        let cd = report(ModelKind::CdGcn);
        let gc = report(ModelKind::GcLstm);
        let tg = report(ModelKind::TGcn);
        assert!(gc.dsp_pct > cd.dsp_pct && cd.dsp_pct > tg.dsp_pct);
        assert!(gc.uram_pct > cd.uram_pct && cd.uram_pct > tg.uram_pct);
        assert!(gc.bram_pct > tg.bram_pct);
    }

    #[test]
    fn nothing_overflows_the_device() {
        for model in ModelKind::ALL {
            let r = report(model);
            for pct in [r.dsp_pct, r.lut_pct, r.ff_pct, r.bram_pct, r.uram_pct] {
                assert!(pct < 100.0, "{model:?} exceeds device: {pct}%");
            }
        }
    }

    #[test]
    fn more_macs_use_more_dsps() {
        let base = report(ModelKind::TGcn);
        let big = estimate(
            &AcceleratorConfig::tagnn_default().with_macs(8192),
            ModelKind::TGcn,
            FpgaCapacity::u280(),
        );
        assert!(big.dsp_pct > base.dsp_pct);
    }
}
