//! The Adaptive RNN Unit: Similarity Core Unit, Delta Generation, and
//! Condense Unit cycle models (paper §4.2, Fig. 7b).
//!
//! Cell-update arithmetic itself runs on the DCU's CPE array; this unit
//! contributes the similarity scoring, the delta generation, and the
//! multi-level zero-filtering of the Condense Unit.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// ARNN throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArnnModel {
    /// Parallel Similarity Core Unit lanes.
    pub scu_lanes: usize,
}

impl ArnnModel {
    /// Derives the model from the accelerator configuration.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            scu_lanes: cfg.scu_lanes,
        }
    }

    /// Cycles for `similarity_ops` scalar similarity operations (dot
    /// products, norms, overlap merges) across the SCU lanes.
    pub fn similarity_cycles(&self, similarity_ops: u64) -> u64 {
        similarity_ops.div_ceil(self.scu_lanes.max(1) as u64)
    }

    /// Cycles for the Condense Unit to mask/compact `delta_updates` delta
    /// vectors of width `hidden`: the mask generation scans every lane, the
    /// compaction writes only the non-zeros (folded into the scan here).
    pub fn condense_cycles(&self, delta_updates: u64, hidden: usize) -> u64 {
        (delta_updates * hidden as u64).div_ceil(self.scu_lanes.max(1) as u64)
    }

    /// Total ARNN-side cycles (similarity + condense; activation is fused
    /// into the cell-update pipeline).
    pub fn total_cycles(&self, similarity_ops: u64, delta_updates: u64, hidden: usize) -> u64 {
        self.similarity_cycles(similarity_ops) + self.condense_cycles(delta_updates, hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ArnnModel {
        ArnnModel::new(&AcceleratorConfig::tagnn_default())
    }

    #[test]
    fn zero_work_is_free() {
        let m = model();
        assert_eq!(m.total_cycles(0, 0, 64), 0);
    }

    #[test]
    fn similarity_throughput_is_lane_bound() {
        let m = ArnnModel { scu_lanes: 64 };
        assert_eq!(m.similarity_cycles(640), 10);
        assert_eq!(m.similarity_cycles(641), 11);
    }

    #[test]
    fn condense_scales_with_width_and_count() {
        let m = model();
        assert!(m.condense_cycles(100, 64) < m.condense_cycles(100, 128));
        assert!(m.condense_cycles(100, 64) < m.condense_cycles(200, 64));
    }

    #[test]
    fn degenerate_lane_count_is_safe() {
        let m = ArnnModel { scu_lanes: 0 };
        assert_eq!(m.similarity_cycles(5), 5);
    }
}
