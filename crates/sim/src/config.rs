//! Accelerator configurations (the paper's Table 4).

use serde::{Deserialize, Serialize};

/// On-chip buffer capacities in bytes (TaGNN column of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Feature Memory buffer.
    pub feature_bytes: usize,
    /// Task FIFO.
    pub task_fifo_bytes: usize,
    /// Intermediate buffer (previous-snapshot cell values).
    pub intermediate_bytes: usize,
    /// O-CSR table.
    pub ocsr_table_bytes: usize,
    /// Structure memory.
    pub structure_bytes: usize,
    /// Output buffer.
    pub output_bytes: usize,
}

impl BufferConfig {
    /// Table 4's TaGNN buffer provisioning.
    pub fn tagnn_default() -> Self {
        Self {
            feature_bytes: 2 * 1024 * 1024,
            task_fifo_bytes: 256 * 1024,
            intermediate_bytes: 128 * 1024,
            ocsr_table_bytes: 1024 * 1024,
            structure_bytes: 512 * 1024,
            output_bytes: 128 * 1024,
        }
    }

    /// Total on-chip capacity.
    pub fn total_bytes(&self) -> usize {
        self.feature_bytes
            + self.task_fifo_bytes
            + self.intermediate_bytes
            + self.ocsr_table_bytes
            + self.structure_bytes
            + self.output_bytes
    }
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Display name.
    pub name: String,
    /// Core clock in MHz (Table 4: 280 MHz on the U280).
    pub clock_mhz: u64,
    /// Total MAC units (Table 4: 4096).
    pub num_macs: usize,
    /// Number of DGNN Computation Units; each owns `num_macs / num_dcus`
    /// MACs split between CPEs and APEs (16 DCUs x 256 MACs by default).
    pub num_dcus: usize,
    /// Combination PEs per DCU.
    pub cpes_per_dcu: usize,
    /// Aggregation PEs (adder-tree lanes) per DCU.
    pub apes_per_dcu: usize,
    /// Similarity Core Unit lanes in the Adaptive RNN Unit.
    pub scu_lanes: usize,
    /// HBM bandwidth in bytes/second (Table 4: 256 GB/s HBM 2.0).
    pub hbm_bandwidth: f64,
    /// HBM access latency in nanoseconds.
    pub hbm_latency_ns: f64,
    /// On-chip buffers.
    pub buffers: BufferConfig,
    /// Overlap-aware data loading enabled (WO/OADL ablation when false).
    pub oadl_enabled: bool,
    /// Adaptive data-similarity computation enabled (WO/ADSC ablation when
    /// false).
    pub adsc_enabled: bool,
    /// Degree-balanced task dispatch (Fig. 13a's Task Dispatcher
    /// contribution; `false` falls back to round-robin assignment).
    pub balanced_dispatch: bool,
    /// Board power in watts for the energy model.
    pub power_w: f64,
}

impl AcceleratorConfig {
    /// The paper's TaGNN configuration (Table 4).
    pub fn tagnn_default() -> Self {
        Self {
            name: "TaGNN".to_string(),
            clock_mhz: 280,
            num_macs: 4096,
            num_dcus: 16,
            cpes_per_dcu: 256,
            apes_per_dcu: 128,
            scu_lanes: 512,
            hbm_bandwidth: 256.0e9,
            hbm_latency_ns: 120.0,
            buffers: BufferConfig::tagnn_default(),
            oadl_enabled: true,
            adsc_enabled: true,
            balanced_dispatch: true,
            power_w: 30.0,
        }
    }

    /// Ablation: round-robin instead of degree-balanced dispatch.
    pub fn without_balanced_dispatch(&self) -> Self {
        let mut c = self.clone();
        c.name = format!("{} WO/Dispatch", self.name);
        c.balanced_dispatch = false;
        c
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Cycles per second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.clock_mhz as f64 * 1.0e6
    }

    /// HBM bytes deliverable per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.hbm_bandwidth / self.cycles_per_sec()
    }

    /// Returns a copy with a different DCU count, keeping per-DCU PE counts
    /// (the Fig. 14b sweep).
    pub fn with_dcus(&self, num_dcus: usize) -> Self {
        assert!(num_dcus > 0, "need at least one DCU");
        let mut c = self.clone();
        c.num_dcus = num_dcus;
        c.num_macs = num_dcus * (self.cpes_per_dcu + self.apes_per_dcu) * 2 / 3;
        c
    }

    /// Returns a copy with a different total MAC budget, keeping the DCU
    /// count (the Fig. 14d sweep).
    pub fn with_macs(&self, num_macs: usize) -> Self {
        assert!(num_macs >= self.num_dcus, "at least one MAC per DCU");
        let mut c = self.clone();
        c.num_macs = num_macs;
        let per_dcu = num_macs / self.num_dcus;
        c.cpes_per_dcu = per_dcu * 2 / 3;
        c.apes_per_dcu = per_dcu - c.cpes_per_dcu;
        c
    }

    /// Ablation: disable overlap-aware data loading.
    pub fn without_oadl(&self) -> Self {
        let mut c = self.clone();
        c.name = format!("{} WO/OADL", self.name);
        c.oadl_enabled = false;
        c
    }

    /// Ablation: disable adaptive data-similarity computation.
    pub fn without_adsc(&self) -> Self {
        let mut c = self.clone();
        c.name = format!("{} WO/ADSC", self.name);
        c.adsc_enabled = false;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table4() {
        let c = AcceleratorConfig::tagnn_default();
        assert_eq!(c.clock_mhz, 280);
        assert_eq!(c.num_macs, 4096);
        assert_eq!(c.num_dcus, 16);
        assert_eq!(c.cpes_per_dcu, 256);
        assert_eq!(c.apes_per_dcu, 128);
        assert_eq!(c.buffers.feature_bytes, 2 * 1024 * 1024);
        assert!((c.hbm_bandwidth - 256.0e9).abs() < 1.0);
    }

    #[test]
    fn buffer_total_sums_components() {
        let b = BufferConfig::tagnn_default();
        // 2 MB + 256 KB + 128 KB + 1 MB + 512 KB + 128 KB = 4 MB exactly.
        assert_eq!(b.total_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn clock_math() {
        let c = AcceleratorConfig::tagnn_default();
        assert!((c.clock_ns() - 3.5714).abs() < 1e-3);
        assert!((c.bytes_per_cycle() - 256.0e9 / 280.0e6).abs() < 1e-6);
    }

    #[test]
    fn sweeps_scale_resources() {
        let base = AcceleratorConfig::tagnn_default();
        let more = base.with_dcus(32);
        assert_eq!(more.num_dcus, 32);
        assert!(more.num_macs > base.num_macs);
        let macs = base.with_macs(8192);
        assert_eq!(macs.num_macs, 8192);
        assert_eq!(macs.num_dcus, base.num_dcus);
        assert_eq!(macs.cpes_per_dcu + macs.apes_per_dcu, 8192 / 16);
    }

    #[test]
    fn ablations_flip_flags() {
        let c = AcceleratorConfig::tagnn_default();
        assert!(!c.without_oadl().oadl_enabled);
        assert!(!c.without_adsc().adsc_enabled);
        assert!(c.without_adsc().oadl_enabled);
    }
}
