//! The Multiple Snapshots Data Loader: the 6-stage vertex-classification
//! pipeline and the 5-stage TFSM-driven affected-subgraph traversal
//! pipeline (paper §4.1, Fig. 6).
//!
//! Both pipelines retire one element per lane per cycle once full; the
//! paper replicates the `Fetch_Neighbors`/`Fetch_Features` stages to keep
//! the design balanced, which we expose as the lane counts.

use serde::{Deserialize, Serialize};

/// Depth of the classification pipeline (Fetch_Vertex .. Identify_Vertices).
pub const CLASSIFY_STAGES: u64 = 6;
/// Depth of the subgraph-traversal pipeline (Fetch_Root .. Neighbors_Selection).
pub const TRAVERSE_STAGES: u64 = 5;

/// MSDL throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsdlModel {
    /// Parallel classification lanes (replicated fetch units).
    pub classify_lanes: usize,
    /// Parallel traversal lanes.
    pub traverse_lanes: usize,
}

impl Default for MsdlModel {
    fn default() -> Self {
        Self {
            classify_lanes: 8,
            traverse_lanes: 8,
        }
    }
}

impl MsdlModel {
    /// Cycles to classify `vertices` vertices across `windows` windows: one
    /// vertex per lane per cycle plus a pipeline fill per window.
    pub fn classification_cycles(&self, vertices: u64, windows: u64) -> u64 {
        if vertices == 0 {
            return 0;
        }
        vertices.div_ceil(self.classify_lanes as u64) + CLASSIFY_STAGES * windows.max(1)
    }

    /// Cycles to traverse `subgraph_edges` affected-subgraph edges across
    /// `windows` windows.
    pub fn traversal_cycles(&self, subgraph_edges: u64, windows: u64) -> u64 {
        if subgraph_edges == 0 {
            return 0;
        }
        subgraph_edges.div_ceil(self.traverse_lanes as u64) + TRAVERSE_STAGES * windows.max(1)
    }

    /// Total MSDL cycles for one run.
    pub fn total_cycles(&self, vertices: u64, subgraph_edges: u64, windows: u64) -> u64 {
        self.classification_cycles(vertices, windows)
            + self.traversal_cycles(subgraph_edges, windows)
    }
}

/// Detailed simulation of the 6-stage classification pipeline over a real
/// degree distribution, with the `Fetch_Neighbors`/`Fetch_Features` units
/// replicated `replication`-fold (the paper's balance mechanism, §4.1).
/// Returns the full per-stage report so bottlenecks are visible.
pub fn detailed_classification(
    degrees: &[usize],
    window: usize,
    feature_words: usize,
    replication: usize,
) -> crate::event::PipelineReport {
    use crate::event::{simulate_pipeline, StageSpec};
    let replication = replication.max(1) as u64;
    let stages = vec![
        StageSpec::new("Fetch_Vertex", 4),
        StageSpec::new("Fetch_Snapshot", 4),
        StageSpec::new("Fetch_Offsets", 4),
        StageSpec::new("Fetch_Neighbors", 4),
        StageSpec::new("Fetch_Features", 4),
        StageSpec::new("Identify_Vertices", 4),
    ];
    // Memory words deliverable per cycle by each fetch unit.
    const NEIGHBOR_WORDS_PER_CYCLE: u64 = 4;
    const FEATURE_WORDS_PER_CYCLE: u64 = 16;
    let w = window as u64;
    simulate_pipeline(&stages, degrees.len() as u64, |s, i| {
        let deg = degrees[i as usize] as u64;
        match s {
            0 => 1, // select a vertex
            1 => w, // presence per snapshot
            2 => w, // offsets per snapshot
            3 => (deg * w)
                .div_ceil(NEIGHBOR_WORDS_PER_CYCLE * replication)
                .max(1),
            4 => ((deg + 1) * w * feature_words as u64)
                .div_ceil(FEATURE_WORDS_PER_CYCLE * replication)
                .max(1),
            _ => 1, // classify
        }
    })
}

/// Detailed simulation of the 5-stage TFSM traversal pipeline (Fetch_Root
/// .. Neighbors_Selection) over the affected subgraph's per-root neighbour
/// counts, with `replication`-fold `Fetch_Neighbors` units.
pub fn detailed_traversal(
    root_degrees: &[usize],
    replication: usize,
) -> crate::event::PipelineReport {
    use crate::event::{simulate_pipeline, StageSpec};
    let replication = replication.max(1) as u64;
    let stages = vec![
        StageSpec::new("Fetch_Root", 4),
        StageSpec::new("Fetch_Neighbors", 4),
        StageSpec::new("Type_Detection", 4),
        StageSpec::new("Offsets_Fetching", 4),
        StageSpec::new("Neighbors_Selection", 4),
    ];
    const NEIGHBOR_WORDS_PER_CYCLE: u64 = 4;
    simulate_pipeline(&stages, root_degrees.len() as u64, |s, i| {
        let deg = root_degrees[i as usize] as u64;
        match s {
            0 => 1, // pop AS FIFO
            1 => deg.div_ceil(NEIGHBOR_WORDS_PER_CYCLE * replication).max(1),
            2 => deg.div_ceil(8).max(1), // bitmap checks
            3 => deg.div_ceil(NEIGHBOR_WORDS_PER_CYCLE).max(1), // offsets
            _ => deg.div_ceil(8).max(1), // select
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_is_free() {
        let m = MsdlModel::default();
        assert_eq!(m.classification_cycles(0, 1), 0);
        assert_eq!(m.traversal_cycles(0, 1), 0);
        assert_eq!(m.total_cycles(0, 0, 1), 0);
    }

    #[test]
    fn throughput_is_one_per_lane_per_cycle() {
        let m = MsdlModel {
            classify_lanes: 4,
            traverse_lanes: 2,
        };
        assert_eq!(m.classification_cycles(400, 1), 100 + CLASSIFY_STAGES);
        assert_eq!(m.traversal_cycles(100, 1), 50 + TRAVERSE_STAGES);
    }

    #[test]
    fn fill_overhead_scales_with_windows() {
        let m = MsdlModel::default();
        let one = m.classification_cycles(1000, 1);
        let ten = m.classification_cycles(1000, 10);
        assert_eq!(ten - one, CLASSIFY_STAGES * 9);
    }

    #[test]
    fn detailed_pipeline_balances_with_replication() {
        let degrees: Vec<usize> = (0..200).map(|i| 2 + (i * 7) % 30).collect();
        let r1 = detailed_classification(&degrees, 4, 32, 1);
        let r4 = detailed_classification(&degrees, 4, 32, 4);
        assert!(r4.total_cycles < r1.total_cycles, "replication must help");
        // Unreplicated, the feature fetch dominates — the imbalance the
        // paper's replication removes.
        assert_eq!(r1.bottleneck().unwrap().name, "Fetch_Features");
    }

    #[test]
    fn detailed_traversal_scales_with_degree_and_replication() {
        let degrees: Vec<usize> = (0..100).map(|i| 1 + (i * 3) % 40).collect();
        let r1 = detailed_traversal(&degrees, 1);
        let r2 = detailed_traversal(&degrees, 4);
        assert!(r2.total_cycles <= r1.total_cycles);
        assert!(
            r1.total_cycles > 100,
            "degree-dependent service must dominate"
        );
    }

    #[test]
    fn detailed_pipeline_handles_empty_input() {
        let r = detailed_classification(&[], 4, 32, 2);
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn more_lanes_go_faster() {
        let narrow = MsdlModel {
            classify_lanes: 1,
            traverse_lanes: 1,
        };
        let wide = MsdlModel {
            classify_lanes: 8,
            traverse_lanes: 8,
        };
        assert!(wide.total_cycles(10_000, 5_000, 2) < narrow.total_cycles(10_000, 5_000, 2));
    }
}
