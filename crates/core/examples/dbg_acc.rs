use tagnn::prelude::*;
use tagnn_models::accuracy::*;
use tagnn_models::approx::*;
fn main() {
    for (scale, snaps, win, hidden) in [(0.02, 16usize, 3usize, 12usize), (0.05, 16, 4, 32)] {
        let p = TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(snaps)
            .window(win)
            .hidden(hidden)
            .scale(scale)
            .build();
        let exact = p.run_reference();
        let last = exact.final_features.len() - 1;
        let task = EvalTask::new(&exact.final_features[last], 0.814, 0xD6);
        println!(
            "scale={scale} base={:.3}",
            task.accuracy(&exact.final_features[last])
        );
        for (name, skip, reuse) in [
            ("exact+skip", SkipConfig::paper_default(), ReuseMode::Exact),
            (
                "paper+noskip",
                SkipConfig::disabled(),
                ReuseMode::PaperWindow,
            ),
            (
                "paper+skip",
                SkipConfig::paper_default(),
                ReuseMode::PaperWindow,
            ),
        ] {
            let out =
                ConcurrentEngine::with_options(p.model().clone(), skip, win, reuse).run(p.graph());
            println!(
                "  {name}: acc={:.3} skip={:.2}",
                task.accuracy(&out.final_features[last]),
                out.stats.skip.skip_ratio()
            );
        }
        for m in ApproxMethod::paper_variants() {
            let hs = run_approx_rnn(p.model(), p.graph(), &exact.gnn_outputs, m);
            println!("  {}: acc={:.3}", m.name(), task.accuracy(&hs[last]));
        }
    }
}
