use tagnn::prelude::*;
use tagnn_graph::classify::classify_window;
use tagnn_graph::multi_csr::MultiCsr;
use tagnn_graph::subgraph::AffectedSubgraph;
use tagnn_graph::types::VertexClass;
fn main() {
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(6)
        .window(3)
        .hidden(12)
        .scale(0.02)
        .build();
    let g = p.graph();
    println!(
        "n={} e={} dim={}",
        g.num_vertices(),
        g.snapshot(0).num_edges(),
        g.feature_dim()
    );
    for batch in g.batches(3) {
        let refs: Vec<&Snapshot> = batch.iter().collect();
        let cls = classify_window(&refs);
        let sg = AffectedSubgraph::extract(&refs, &cls);
        let ocsr = OCsr::from_subgraph(&refs, &cls, &sg);
        let csr = MultiCsr::from_window(&refs);
        let un = cls.count(VertexClass::Unaffected);
        let st = cls.count(VertexClass::Stable);
        let af = cls.count(VertexClass::Affected);
        println!(
            "un={un} st={st} af={af} | sgV={} sgE={} featrows={} | ocsr={}B csr={}B",
            sg.num_vertices(),
            sg.num_edges(),
            ocsr.num_feature_rows(),
            ocsr.storage_bytes(),
            csr.storage_bytes()
        );
    }
}
