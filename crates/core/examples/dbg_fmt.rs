use tagnn::prelude::*;
use tagnn_graph::multi_csr::MultiCsr;
use tagnn_graph::types::VertexClass;
fn main() {
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::Gdelt)
        .model(ModelKind::TGcn)
        .snapshots(6)
        .window(3)
        .hidden(12)
        .scale(0.02)
        .build();
    let g = p.graph();
    println!(
        "n={} e={} dim={}",
        g.num_vertices(),
        g.snapshot(0).num_edges(),
        g.feature_dim()
    );
    for (batch, plan) in g.batches(3).zip(p.plans()) {
        let refs: Vec<&Snapshot> = batch.iter().collect();
        let cls = plan.classification();
        let sg = plan.subgraph();
        let ocsr = plan.ocsr();
        let csr = MultiCsr::from_window(&refs);
        let un = cls.count(VertexClass::Unaffected);
        let st = cls.count(VertexClass::Stable);
        let af = cls.count(VertexClass::Affected);
        println!(
            "un={un} st={st} af={af} | sgV={} sgE={} featrows={} | ocsr={}B csr={}B",
            sg.num_vertices(),
            sg.num_edges(),
            ocsr.num_feature_rows(),
            ocsr.storage_bytes(),
            csr.storage_bytes()
        );
    }
}
