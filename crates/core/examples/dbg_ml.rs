use tagnn::prelude::*;
use tagnn_models::accuracy::*;
use tagnn_tensor::similarity::cosine;
fn main() {
    let ctx_hidden = 48;
    let window = 4;
    let p = TagnnPipeline::builder()
        .dataset(DatasetPreset::MovieLens)
        .model(ModelKind::GcLstm)
        .snapshots(16)
        .window(window)
        .hidden(ctx_hidden)
        .scale(0.05)
        .reuse(ReuseMode::Exact)
        .build();
    let exact = p.run_reference();
    let total = exact.final_features.len();
    let out = p.run_concurrent();
    println!(
        "skip: {:?} ratio={:.2}",
        out.stats.skip,
        out.stats.skip.skip_ratio()
    );
    for t in [total - 4, total - 2, total - 1] {
        let a = &exact.final_features[t];
        let b = &out.final_features[t];
        let mut sim = 0.0;
        let mut maxd = 0f32;
        for v in 0..a.rows() {
            sim += cosine(a.row(v), b.row(v)) as f64;
            maxd = maxd.max(
                a.row(v)
                    .iter()
                    .zip(b.row(v))
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f32, f32::max),
            );
        }
        println!(
            "t={t}: mean_cos={:.4} maxdiff={:.3}",
            sim / a.rows() as f64,
            maxd
        );
    }
    // mean |h| magnitude
    let h = &exact.final_features[total - 1];
    let mag: f32 = h.as_slice().iter().map(|v| v.abs()).sum::<f32>() / h.as_slice().len() as f32;
    println!("mean |h| = {mag:.4}");
    let task = EvalTask::new(&exact.final_features[total - 1], 0.912, 0xD6);
    println!(
        "acc exact={:.3} tagnn={:.3}",
        task.accuracy(&exact.final_features[total - 1]),
        task.accuracy(&out.final_features[total - 1])
    );
}
