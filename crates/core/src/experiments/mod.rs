//! Typed experiment runners regenerating every table and figure of the
//! paper's evaluation (§2.2, §5).
//!
//! Each runner consumes an [`ExperimentContext`] (dataset scale, window,
//! hidden size, which datasets/models to cover) and produces an
//! [`ExperimentResult`]: a rendered text table matching the paper's rows
//! plus a flat metric map that the integration tests assert shape
//! properties on (who wins, by roughly what factor).
//!
//! Absolute numbers differ from the paper — the substrate is a simulator
//! over synthetic workloads — but the comparisons are the reproduction
//! target. `EXPERIMENTS.md` records paper-vs-measured for every entry.

pub mod ablation;
pub mod extensions;
pub mod fidelity;
pub mod motivation;
pub mod performance;
pub mod sensitivity;
pub mod tables;

use crate::pipeline::TagnnPipeline;
use crate::report::TextTable;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use tagnn_graph::plan::PlanCache;
use tagnn_graph::DatasetPreset;
use tagnn_models::ModelKind;
use tagnn_obs::{span as obs_span, Recorder};

/// Shared configuration for all experiment runners.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Snapshots generated per dataset.
    pub snapshots: usize,
    /// Window (batch) size K; the paper defaults to 4.
    pub window: usize,
    /// Hidden dimensionality of the models.
    pub hidden: usize,
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Datasets to cover.
    pub datasets: Vec<DatasetPreset>,
    /// Models to cover.
    pub models: Vec<ModelKind>,
    /// Window-plan cache shared by every pipeline this context builds:
    /// the graph depends only on dataset/scale/snapshots/seed, so the
    /// models × datasets loops of the performance experiments replan each
    /// dataset once instead of once per model. Cloning the context shares
    /// the cache.
    pub plan_cache: Arc<PlanCache>,
    /// Optional tagnn-obs recorder threaded into every pipeline this
    /// context builds: each [`run`] opens an `experiment.<id>` span and
    /// the stages underneath record their phase spans and publish their
    /// counters. `None` (the default) leaves every run untraced and
    /// byte-identical to the pre-observability behaviour.
    pub recorder: Option<Arc<Recorder>>,
    /// Run every pipeline this context builds through the software-
    /// pipelined plan/execute overlap path (`--overlap`): a bounded-
    /// lookahead planner thread builds window W+1 while window W
    /// executes. Outputs are bit-identical either way.
    pub overlap: bool,
    /// Planner lookahead depth for the overlap path (`--lookahead`).
    pub lookahead: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            snapshots: 8,
            window: 4,
            hidden: 48,
            scale: 0.05,
            seed: 0xD6,
            datasets: DatasetPreset::ALL.to_vec(),
            models: ModelKind::ALL.to_vec(),
            plan_cache: Arc::new(PlanCache::new()),
            recorder: None,
            overlap: false,
            lookahead: 1,
        }
    }
}

impl ExperimentContext {
    /// A reduced context for fast smoke tests: two datasets, one model,
    /// fewer snapshots.
    pub fn quick() -> Self {
        Self {
            snapshots: 6,
            window: 3,
            hidden: 12,
            scale: 0.02,
            seed: 0xD6,
            datasets: vec![DatasetPreset::Gdelt, DatasetPreset::HepPh],
            models: vec![ModelKind::TGcn],
            plan_cache: Arc::new(PlanCache::new()),
            recorder: None,
            overlap: false,
            lookahead: 1,
        }
    }

    /// Attaches a tagnn-obs recorder to every pipeline and experiment run
    /// built from this context.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds (and measures) a pipeline for one dataset/model pair,
    /// sharing this context's plan cache.
    pub fn pipeline(&self, dataset: DatasetPreset, model: ModelKind) -> TagnnPipeline {
        let mut builder = TagnnPipeline::builder()
            .dataset(dataset)
            .model(model)
            .snapshots(self.snapshots)
            .window(self.window)
            .hidden(self.hidden)
            .scale(self.scale)
            .seed(self.seed)
            .plan_cache(Arc::clone(&self.plan_cache))
            .overlap(self.overlap)
            .lookahead(self.lookahead);
        if let Some(rec) = &self.recorder {
            builder = builder.recorder(Arc::clone(rec));
        }
        builder.build()
    }

    /// Builds a pipeline with a doubled snapshot stream for accuracy
    /// experiments: the paper evaluates mid-stream (hundreds of snapshots
    /// in), where the recurrent state has left its cold-start transient —
    /// cell skipping is only meaningful in that converged regime.
    pub fn accuracy_pipeline(&self, dataset: DatasetPreset, model: ModelKind) -> TagnnPipeline {
        let mut builder = TagnnPipeline::builder()
            .dataset(dataset)
            .model(model)
            .snapshots(self.snapshots * 2)
            .window(self.window)
            .hidden(self.hidden)
            .scale(self.scale)
            .seed(self.seed)
            .plan_cache(Arc::clone(&self.plan_cache))
            // Table 5 isolates *RNN* approximation fidelity: every
            // competitor consumes exact GNN outputs, so TaGNN's row runs
            // the GNN in exact reuse mode too.
            .reuse(tagnn_models::ReuseMode::Exact);
        if let Some(rec) = &self.recorder {
            builder = builder.recorder(Arc::clone(rec));
        }
        builder.build()
    }
}

/// The output of one experiment runner.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Paper artefact id, e.g. `fig9` or `table5`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Rendered rows (serialised as the rendered string).
    #[serde(serialize_with = "serialize_table")]
    pub table: TextTable,
    /// Flat named metrics for assertions and EXPERIMENTS.md.
    pub metrics: BTreeMap<String, f64>,
}

fn serialize_table<S: serde::Serializer>(t: &TextTable, s: S) -> Result<S::Ok, S::Error> {
    s.serialize_str(&t.render())
}

impl ExperimentResult {
    /// Renders header + table.
    pub fn render(&self) -> String {
        format!(
            "== {} — {} ==\n{}",
            self.id,
            self.title,
            self.table.render()
        )
    }

    /// Fetches a metric, panicking with a useful message when missing.
    pub fn metric(&self, key: &str) -> f64 {
        *self
            .metrics
            .get(key)
            .unwrap_or_else(|| panic!("metric `{key}` missing from {}", self.id))
    }
}

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table2", "fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "table3", "table4", "fig8a",
    "fig8b", "fig9", "fig10", "fig11", "table5", "fig12", "fig13a", "fig13b", "fig14a", "fig14b",
    "fig14c", "fig14d", "extA", "extB", "extC", "extD",
];

/// Runs one experiment by id, stamping the context's cumulative
/// plan-cache tallies into the result's metrics (so the JSON output of
/// every experiment records how much frontend work the shared cache
/// saved).
///
/// # Panics
/// Panics on an unknown id.
pub fn run(id: &str, ctx: &ExperimentContext) -> ExperimentResult {
    let _span = obs_span(ctx.recorder.as_deref(), &format!("experiment.{id}"));
    let mut result = run_inner(id, ctx);
    let cache = ctx.plan_cache.stats();
    result
        .metrics
        .insert("plan_cache_hits".into(), cache.hits as f64);
    result
        .metrics
        .insert("plan_cache_misses".into(), cache.misses as f64);
    result
}

fn run_inner(id: &str, ctx: &ExperimentContext) -> ExperimentResult {
    match id {
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "table4" => tables::table4(ctx),
        "fig2a" => motivation::fig2a(ctx),
        "fig2b" => motivation::fig2b(ctx),
        "fig2c" => motivation::fig2c(ctx),
        "fig2d" => motivation::fig2d(ctx),
        "fig3a" => motivation::fig3a(ctx),
        "fig3b" => motivation::fig3b(ctx),
        "fig8a" => performance::fig8a(ctx),
        "fig8b" => performance::fig8b(ctx),
        "fig9" => performance::fig9(ctx),
        "fig10" => performance::fig10(ctx),
        "fig11" => performance::fig11(ctx),
        "table5" => fidelity::table5(ctx),
        "fig12" => ablation::fig12(ctx),
        "fig13a" => ablation::fig13a(ctx),
        "fig13b" => ablation::fig13b(ctx),
        "fig14a" => sensitivity::fig14a(ctx),
        "fig14b" => sensitivity::fig14b(ctx),
        "fig14c" => sensitivity::fig14c(ctx),
        "fig14d" => sensitivity::fig14d(ctx),
        "extA" => extensions::ext_a(ctx),
        "extB" => extensions::ext_b(ctx),
        "extC" => extensions::ext_c(ctx),
        "extD" => extensions::ext_d(ctx),
        other => panic!("unknown experiment id `{other}`"),
    }
}

/// Runs every experiment in paper order.
pub fn run_all(ctx: &ExperimentContext) -> Vec<ExperimentResult> {
    ALL_EXPERIMENTS.iter().map(|id| run(id, ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_quick_is_smaller_than_default() {
        let q = ExperimentContext::quick();
        let d = ExperimentContext::default();
        assert!(q.snapshots <= d.snapshots);
        assert!(q.datasets.len() < d.datasets.len());
    }

    #[test]
    fn all_ids_are_unique() {
        let mut ids = ALL_EXPERIMENTS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run("fig99", &ExperimentContext::quick());
    }
}
