//! Beyond-paper extension studies.
//!
//! These do not correspond to a table or figure in the paper; they probe
//! design choices the paper leaves implicit:
//!
//! * `extA` — exact versus window-granularity GNN reuse: what the paper's
//!   reuse approximation buys (loads/compute) and costs (output error);
//! * `extB` — Condense-Unit tolerance sweep: how lossy deltas trade RNN
//!   MACs against output fidelity;
//! * `extC` — pipeline boundedness: where the accelerator sits between
//!   memory- and compute-bound as HBM bandwidth scales;
//! * `extD` — MSDL stage balance: why the paper replicates the
//!   `Fetch_Neighbors`/`Fetch_Features` units (§4.1), shown on the real
//!   degree distribution with a finite-FIFO pipeline simulation.

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_f, fmt_pct, TextTable};
use std::collections::BTreeMap;
use tagnn_models::{ConcurrentEngine, ModelKind, ReuseMode, SkipConfig};
use tagnn_sim::{AcceleratorConfig, TagnnSimulator};

/// extA: exact vs window-granularity GNN reuse (T-GCN, skipping off so the
/// comparison isolates the GNN side).
pub fn ext_a(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "Loads (exact)",
        "Loads (paper)",
        "GNN MACs saved (exact)",
        "GNN MACs saved (paper)",
        "Max output error (paper)",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let reference = p.run_reference();
        let run = |mode| {
            ConcurrentEngine::with_options(
                p.model().clone(),
                SkipConfig::disabled(),
                ctx.window,
                mode,
            )
            .run(p.graph())
        };
        let exact = run(ReuseMode::Exact);
        let paper = run(ReuseMode::PaperWindow);
        let ref_macs =
            (reference.stats.gnn_aggregate_macs + reference.stats.gnn_combine_macs) as f64;
        let saved = |out: &tagnn_models::InferenceOutput| {
            1.0 - (out.stats.gnn_aggregate_macs + out.stats.gnn_combine_macs) as f64 / ref_macs
        };
        let err = reference.max_final_feature_diff(&paper);
        table.row(vec![
            ds.abbrev().to_string(),
            exact.stats.feature_rows_loaded.to_string(),
            paper.stats.feature_rows_loaded.to_string(),
            fmt_pct(saved(&exact)),
            fmt_pct(saved(&paper)),
            format!("{err:.4}"),
        ]);
        metrics.insert(format!("exact_saved_{}", ds.abbrev()), saved(&exact));
        metrics.insert(format!("paper_saved_{}", ds.abbrev()), saved(&paper));
        metrics.insert(format!("paper_err_{}", ds.abbrev()), err as f64);
        metrics.insert(
            format!("exact_loads_{}", ds.abbrev()),
            exact.stats.feature_rows_loaded as f64,
        );
        metrics.insert(
            format!("paper_loads_{}", ds.abbrev()),
            paper.stats.feature_rows_loaded as f64,
        );
    }
    ExperimentResult {
        id: "extA".into(),
        title: "Extension: exact vs window-granularity GNN reuse (T-GCN, no skipping)".into(),
        table,
        metrics,
    }
}

/// extB: Condense-Unit delta tolerance sweep (T-GCN, delta-only band so
/// every scored vertex takes the delta path).
pub fn ext_b(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = *ctx.datasets.last().expect("at least one dataset");
    let p = ctx.pipeline(ds, ModelKind::TGcn);
    let reference = p.run_reference();
    let mut table = TextTable::new(vec![
        "Tolerance",
        "Delta updates",
        "RNN MACs (vs full)",
        "Max output error",
    ]);
    let mut metrics = BTreeMap::new();
    let full_macs = reference.stats.rnn_macs as f64;
    for (i, tol) in [0.0f32, 0.001, 0.01, 0.05, 0.1].into_iter().enumerate() {
        let skip = SkipConfig {
            theta_s: -1.0,
            theta_e: 1.0,
            delta_tolerance: tol,
            enabled: true,
        };
        let out =
            ConcurrentEngine::with_options(p.model().clone(), skip, ctx.window, ReuseMode::Exact)
                .run(p.graph());
        let err = reference.max_final_feature_diff(&out);
        let mac_frac = out.stats.rnn_macs as f64 / full_macs;
        table.row(vec![
            format!("{tol}"),
            out.stats.skip.delta.to_string(),
            fmt_pct(mac_frac),
            format!("{err:.5}"),
        ]);
        metrics.insert(format!("mac_frac_{i}"), mac_frac);
        metrics.insert(format!("err_{i}"), err as f64);
    }
    ExperimentResult {
        id: "extB".into(),
        title: format!("Extension: Condense-Unit tolerance sweep ({})", ds.abbrev()),
        table,
        metrics,
    }
}

/// extC: memory- vs compute-boundedness as HBM bandwidth scales.
pub fn ext_c(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = *ctx.datasets.first().expect("at least one dataset");
    let p = ctx.pipeline(ds, ModelKind::TGcn);
    let mut table = TextTable::new(vec![
        "HBM bandwidth",
        "Time (ms)",
        "Compute stall",
        "Memory idle",
        "Bound",
    ]);
    let mut metrics = BTreeMap::new();
    for (i, scale) in [0.25f64, 0.5, 1.0, 2.0, 4.0].into_iter().enumerate() {
        let mut cfg = AcceleratorConfig::tagnn_default();
        cfg.hbm_bandwidth *= scale;
        cfg.name = format!("TaGNN@{scale}x BW");
        let r = TagnnSimulator::new(cfg).simulate(p.graph(), p.workload());
        let stall = r.compute_stall_cycles as f64 / r.cycles.max(1) as f64;
        let idle = r.memory_idle_cycles as f64 / r.cycles.max(1) as f64;
        // Boundedness from the pre-overlap cycle demand: the timeline's
        // idle counter only measures buffer back-pressure (waiting for
        // ping-pong space), so it cannot signal compute-boundedness on
        // its own.
        let bound = if r.breakdown.dram > r.breakdown.compute_total() {
            "memory"
        } else {
            "compute"
        };
        table.row(vec![
            format!("{scale}x"),
            fmt_f(r.time_ms),
            fmt_pct(stall),
            fmt_pct(idle),
            bound.to_string(),
        ]);
        metrics.insert(format!("time_{i}"), r.time_ms);
        metrics.insert(format!("stall_{i}"), stall);
    }
    ExperimentResult {
        id: "extC".into(),
        title: format!(
            "Extension: memory/compute boundedness vs HBM bandwidth ({})",
            ds.abbrev()
        ),
        table,
        metrics,
    }
}

/// extD: MSDL classification-pipeline balance as the fetch units are
/// replicated, simulated with finite inter-stage FIFOs over the actual
/// degree distribution.
pub fn ext_d(ctx: &ExperimentContext) -> ExperimentResult {
    use tagnn_sim::msdl::detailed_classification;
    let ds = *ctx.datasets.first().expect("at least one dataset");
    let p = ctx.pipeline(ds, ModelKind::TGcn);
    let snap0 = p.graph().snapshot(0);
    let degrees: Vec<usize> = (0..p.graph().num_vertices() as u32)
        .map(|v| snap0.csr().degree(v))
        .collect();
    let feature_words = p.graph().feature_dim();

    let mut table = TextTable::new(vec![
        "Fetch replication",
        "Cycles",
        "Speedup",
        "Bottleneck stage",
        "Bottleneck utilisation",
    ]);
    let mut metrics = BTreeMap::new();
    let mut base = None;
    for (i, replication) in [1usize, 2, 4, 8, 16].into_iter().enumerate() {
        let r = detailed_classification(&degrees, ctx.window, feature_words, replication);
        let b = *base.get_or_insert(r.total_cycles.max(1));
        let bottleneck = r.bottleneck().expect("stages exist");
        let util = bottleneck.busy_cycles as f64 / r.total_cycles.max(1) as f64;
        table.row(vec![
            format!("{replication}x"),
            r.total_cycles.to_string(),
            fmt_f(b as f64 / r.total_cycles.max(1) as f64),
            bottleneck.name.clone(),
            fmt_pct(util),
        ]);
        metrics.insert(format!("cycles_{i}"), r.total_cycles as f64);
        metrics.insert(format!("util_{i}"), util);
    }
    ExperimentResult {
        id: "extD".into(),
        title: format!(
            "Extension: MSDL classification-pipeline balance ({})",
            ds.abbrev()
        ),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick()
    }

    #[test]
    fn ext_d_replication_helps_then_saturates() {
        let r = ext_d(&ctx());
        assert!(
            r.metric("cycles_2") < r.metric("cycles_0"),
            "replication must speed the pipeline"
        );
        // Diminishing returns: the last doubling helps less than the first.
        let first = r.metric("cycles_0") / r.metric("cycles_1");
        let last = r.metric("cycles_3") / r.metric("cycles_4");
        assert!(last <= first + 1e-9);
    }

    #[test]
    fn ext_a_paper_mode_reuses_at_least_as_much() {
        let r = ext_a(&ctx());
        for ds in &ctx().datasets {
            let a = r.metric(&format!("paper_saved_{}", ds.abbrev()));
            let b = r.metric(&format!("exact_saved_{}", ds.abbrev()));
            assert!(
                a + 1e-9 >= b,
                "{}: paper reuse must save at least as much",
                ds.abbrev()
            );
            assert!(
                r.metric(&format!("paper_loads_{}", ds.abbrev()))
                    <= r.metric(&format!("exact_loads_{}", ds.abbrev())) + 1e-9
            );
        }
    }

    #[test]
    fn ext_b_tolerance_trades_macs_for_error() {
        let r = ext_b(&ctx());
        // More tolerance -> fewer MACs, more error.
        assert!(r.metric("mac_frac_4") <= r.metric("mac_frac_0") + 1e-9);
        assert!(r.metric("err_4") >= r.metric("err_0") - 1e-9);
        // Zero tolerance is exact.
        assert!(r.metric("err_0") < 1e-3, "lossless deltas must be exact");
    }

    #[test]
    fn ext_c_more_bandwidth_never_slower() {
        let r = ext_c(&ctx());
        assert!(r.metric("time_4") <= r.metric("time_0") + 1e-9);
        // Stalls shrink as bandwidth grows.
        assert!(r.metric("stall_4") <= r.metric("stall_0") + 1e-9);
    }
}
