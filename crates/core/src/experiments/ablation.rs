//! Design-effectiveness studies: Figures 12, 13(a), and 13(b).

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_pct, fmt_x, TextTable};
use std::collections::BTreeMap;
use tagnn_graph::multi_csr::MultiCsr;
use tagnn_graph::pma::Pma;
use tagnn_graph::Snapshot;
use tagnn_models::ModelKind;
use tagnn_sim::{AcceleratorConfig, TagnnSimulator};

/// Fig. 12: contribution of OADL and ADSC — TaGNN versus WO/OADL and
/// WO/ADSC.
pub fn fig12(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Model",
        "Dataset",
        "OADL gain",
        "ADSC gain",
        "OADL share",
    ]);
    let mut metrics = BTreeMap::new();
    let full = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let wo_oadl = TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_oadl());
    let wo_adsc = TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_adsc());
    let (mut sum_oadl, mut sum_adsc, mut count) = (0.0, 0.0, 0);
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.pipeline(ds, model);
            let t_full = full.simulate(p.graph(), p.workload()).time_ms;
            let oadl_gain = wo_oadl.simulate(p.graph(), p.workload()).time_ms / t_full;
            let adsc_gain = wo_adsc.simulate(p.graph(), p.workload()).time_ms / t_full;
            let share = (oadl_gain - 1.0) / ((oadl_gain - 1.0) + (adsc_gain - 1.0)).max(1e-9);
            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                fmt_x(oadl_gain),
                fmt_x(adsc_gain),
                fmt_pct(share),
            ]);
            sum_oadl += oadl_gain;
            sum_adsc += adsc_gain;
            count += 1;
        }
    }
    metrics.insert("avg_oadl_gain".into(), sum_oadl / count as f64);
    metrics.insert("avg_adsc_gain".into(), sum_adsc / count as f64);
    ExperimentResult {
        id: "fig12".into(),
        title: "Performance breakdown of TaGNN (paper: OADL 4.41x / 71.4%, ADSC 2.48x / 28.6%)"
            .into(),
        table,
        metrics,
    }
}

/// Fig. 13(a): architecture performance-gain breakdown across the three
/// hardware contributors — MSDL + DGNN Computation Unit (via OADL), the
/// Task Dispatcher (degree balancing), and the Adaptive RNN Unit (via
/// ADSC) — on T-GCN.
pub fn fig13a(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "MSDL+DCU",
        "Task Dispatcher",
        "Adaptive RNN",
    ]);
    let mut metrics = BTreeMap::new();
    let full = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let wo_oadl = TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_oadl());
    let wo_disp =
        TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_balanced_dispatch());
    let wo_adsc = TagnnSimulator::new(AcceleratorConfig::tagnn_default().without_adsc());
    let (mut s_msdl, mut s_disp, mut s_arnn) = (0.0, 0.0, 0.0);
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let t_full = full.simulate(p.graph(), p.workload()).time_ms;
        let d_msdl = (wo_oadl.simulate(p.graph(), p.workload()).time_ms - t_full).max(0.0);
        let d_disp = (wo_disp.simulate(p.graph(), p.workload()).time_ms - t_full).max(0.0);
        let d_arnn = (wo_adsc.simulate(p.graph(), p.workload()).time_ms - t_full).max(0.0);
        let total = (d_msdl + d_disp + d_arnn).max(1e-12);
        table.row(vec![
            ds.abbrev().to_string(),
            fmt_pct(d_msdl / total),
            fmt_pct(d_disp / total),
            fmt_pct(d_arnn / total),
        ]);
        s_msdl += d_msdl / total;
        s_disp += d_disp / total;
        s_arnn += d_arnn / total;
    }
    let n = ctx.datasets.len() as f64;
    metrics.insert("avg_msdl_dcu_share".into(), s_msdl / n);
    metrics.insert("avg_dispatcher_share".into(), s_disp / n);
    metrics.insert("avg_arnn_share".into(), s_arnn / n);
    ExperimentResult {
        id: "fig13a".into(),
        title: "Architecture gain breakdown (paper: 53.6% MSDL+DCU, 13.8% dispatcher, 32.6% ARNN)"
            .into(),
        table,
        metrics,
    }
}

/// Fig. 13(b): O-CSR versus per-snapshot CSR and PMA — storage footprint
/// and a scan-cost execution proxy (T-GCN windows).
pub fn fig13b(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "vs CSR (time)",
        "vs PMA (time)",
        "CSR storage saved",
        "PMA storage saved",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let graph = p.graph();
        let (mut ocsr_bytes, mut csr_bytes, mut pma_bytes) = (0u64, 0u64, 0u64);
        let (mut ocsr_cost, mut csr_cost, mut pma_cost) = (0u64, 0u64, 0u64);
        // The pipeline already planned these exact windows (same graph,
        // same K) — reuse its O-CSR packings instead of re-running the
        // frontend.
        for (batch, plan) in graph.batches(ctx.window).zip(p.plans()) {
            let refs: Vec<&Snapshot> = batch.iter().collect();
            let ocsr = plan.ocsr();
            let csr = MultiCsr::from_window(&refs);
            // A PMA-based dynamic format (GPMA/GraSU style) holds the whole
            // window's timestamped edge set in one gapped array plus one
            // full feature table and the per-snapshot changed rows — it
            // avoids CSR's blind K-fold replication but not O-CSR's
            // subgraph-and-stability dedup.
            let mut pma = Pma::new();
            let mut changed_rows = 0usize;
            for (t, snap) in refs.iter().enumerate() {
                for (s, d) in snap.csr().edges() {
                    // The evolving structure stores each distinct edge once
                    // (stamped with its arrival snapshot), not one copy per
                    // snapshot.
                    if t == 0 || !refs[t - 1].csr().has_edge(s, d) {
                        pma.insert((s, t as u32, d));
                    }
                }
                if t > 0 {
                    for v in 0..graph.num_vertices() as u32 {
                        if snap.feature(v) != refs[0].feature(v) {
                            changed_rows += 1;
                        }
                    }
                }
            }
            let dim = graph.feature_dim();
            let pma_feature_bytes = (graph.num_vertices() + changed_rows) * dim * 4;

            ocsr_bytes += ocsr.storage_bytes() as u64;
            csr_bytes += csr.storage_bytes() as u64;
            pma_bytes += (pma.storage_bytes() + pma_feature_bytes) as u64;

            // Scan-cost proxy: words touched to walk one window's worth of
            // adjacency + features.
            ocsr_cost += (2 * ocsr.num_edges() + ocsr.num_feature_rows() * dim) as u64;
            let per_vertex: u64 = (0..graph.num_vertices() as u32)
                .map(|v| csr.window_access_cost(v) as u64)
                .sum();
            csr_cost += per_vertex;
            pma_cost += (pma.scan_cost() * 4 + pma_feature_bytes / 4) as u64;
        }
        let vs_csr = csr_cost as f64 / ocsr_cost.max(1) as f64;
        let vs_pma = pma_cost as f64 / ocsr_cost.max(1) as f64;
        let csr_saved = 1.0 - ocsr_bytes as f64 / csr_bytes.max(1) as f64;
        let pma_saved = 1.0 - ocsr_bytes as f64 / pma_bytes.max(1) as f64;
        table.row(vec![
            ds.abbrev().to_string(),
            fmt_x(vs_csr),
            fmt_x(vs_pma),
            fmt_pct(csr_saved),
            fmt_pct(pma_saved),
        ]);
        metrics.insert(format!("vs_csr_{}", ds.abbrev()), vs_csr);
        metrics.insert(format!("vs_pma_{}", ds.abbrev()), vs_pma);
        metrics.insert(format!("csr_saved_{}", ds.abbrev()), csr_saved);
        metrics.insert(format!("pma_saved_{}", ds.abbrev()), pma_saved);
    }
    ExperimentResult {
        id: "fig13b".into(),
        title: "O-CSR vs CSR and PMA (paper: 2.3-3.4x / 1.8-2.5x faster; 73-82% / 53-62% smaller)"
            .into(),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick()
    }

    #[test]
    fn fig12_both_mechanisms_help() {
        let r = fig12(&ctx());
        assert!(r.metric("avg_oadl_gain") > 1.0, "OADL must help");
        assert!(r.metric("avg_adsc_gain") >= 1.0, "ADSC must not hurt");
        assert!(
            r.metric("avg_oadl_gain") > r.metric("avg_adsc_gain"),
            "paper: OADL contributes the larger share"
        );
    }

    #[test]
    fn fig13a_shares_sum_to_one() {
        let r = fig13a(&ctx());
        let total = r.metric("avg_msdl_dcu_share")
            + r.metric("avg_dispatcher_share")
            + r.metric("avg_arnn_share");
        assert!((total - 1.0).abs() < 1e-6);
        assert!(
            r.metric("avg_msdl_dcu_share") > r.metric("avg_dispatcher_share"),
            "paper: MSDL+DCU dominates the dispatcher"
        );
    }

    #[test]
    fn fig13b_ocsr_wins_everywhere() {
        let r = fig13b(&ctx());
        for ds in &ctx().datasets {
            assert!(r.metric(&format!("vs_csr_{}", ds.abbrev())) > 1.0);
            assert!(r.metric(&format!("vs_pma_{}", ds.abbrev())) > 1.0);
            let csr_saved = r.metric(&format!("csr_saved_{}", ds.abbrev()));
            let pma_saved = r.metric(&format!("pma_saved_{}", ds.abbrev()));
            assert!(csr_saved > 0.0 && csr_saved < 1.0);
            assert!(
                csr_saved > pma_saved,
                "paper: savings vs CSR exceed savings vs PMA ({csr_saved} vs {pma_saved})"
            );
        }
    }
}
