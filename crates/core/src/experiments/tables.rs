//! Tables 2 (datasets), 3 (resource utilisation), and 4 (accelerator
//! configurations).

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_f, TextTable};
use std::collections::BTreeMap;
use tagnn_graph::stats::degree_stats;
use tagnn_models::ModelKind;
use tagnn_sim::baselines::{cambricon_dg, dgnn_booster, edgcn};
use tagnn_sim::resource::{estimate, FpgaCapacity};
use tagnn_sim::AcceleratorConfig;

/// Table 2: the dynamic-graph datasets — full-scale parameters from the
/// paper plus the actually generated (scaled) synthetic instances.
pub fn table2(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "|V| (paper)",
        "|E| (paper)",
        "Dim (paper)",
        "T (paper)",
        "|V| (gen)",
        "|E| (gen)",
        "avg deg (gen)",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let (v, e, d, t) = ds.full_size();
        let pipeline = ctx.pipeline(ds, ModelKind::TGcn);
        let g = pipeline.graph();
        let deg = degree_stats(g.snapshot(0));
        table.row(vec![
            ds.abbrev().to_string(),
            v.to_string(),
            e.to_string(),
            d.to_string(),
            t.to_string(),
            g.num_vertices().to_string(),
            g.snapshot(0).num_edges().to_string(),
            fmt_f(deg.mean),
        ]);
        metrics.insert(format!("{}_vertices", ds.abbrev()), g.num_vertices() as f64);
        metrics.insert(
            format!("{}_edges", ds.abbrev()),
            g.snapshot(0).num_edges() as f64,
        );
    }
    ExperimentResult {
        id: "table2".into(),
        title: "Real-life dynamic graph datasets (scaled synthetic equivalents)".into(),
        table,
        metrics,
    }
}

/// Table 3: FPGA resource utilisation of TaGNN per model on the U280.
pub fn table3(ctx: &ExperimentContext) -> ExperimentResult {
    let cfg = AcceleratorConfig::tagnn_default();
    let mut table = TextTable::new(vec!["Resource", "CD-GCN", "GC-LSTM", "T-GCN"]);
    let reports: Vec<_> = ModelKind::ALL
        .iter()
        .map(|&m| estimate(&cfg, m, FpgaCapacity::u280()))
        .collect();
    type Getter = fn(&tagnn_sim::resource::ResourceReport) -> f64;
    let rows: [(&str, Getter); 5] = [
        ("DSP", |r| r.dsp_pct),
        ("LUT", |r| r.lut_pct),
        ("FF", |r| r.ff_pct),
        ("BRAM", |r| r.bram_pct),
        ("UltraRAM", |r| r.uram_pct),
    ];
    let mut metrics = BTreeMap::new();
    for (name, f) in rows {
        table.row(vec![
            name.to_string(),
            format!("{:.1}%", f(&reports[0])),
            format!("{:.1}%", f(&reports[1])),
            format!("{:.1}%", f(&reports[2])),
        ]);
        for (i, m) in ModelKind::ALL.iter().enumerate() {
            metrics.insert(
                format!("{}_{}", name.to_lowercase(), m.name()),
                f(&reports[i]),
            );
        }
    }
    let _ = ctx;
    ExperimentResult {
        id: "table3".into(),
        title: "Resource utilisation of TaGNN on U280 FPGA (area model)".into(),
        table,
        metrics,
    }
}

/// Table 4: system configurations of the compared accelerators.
pub fn table4(ctx: &ExperimentContext) -> ExperimentResult {
    let tagnn = AcceleratorConfig::tagnn_default();
    let mut table = TextTable::new(vec![
        "Accelerator",
        "Compute",
        "Effective MAC/s",
        "Off-chip",
        "Power (W)",
    ]);
    table.row(vec![
        "DGNN-Booster".to_string(),
        "280 MHz @ 4,096 MACs".to_string(),
        format!(
            "{:.2e}",
            dgnn_booster::dgnn_booster().effective_macs_per_sec
        ),
        "256 GB/s HBM 2.0".to_string(),
        format!("{:.0}", dgnn_booster::dgnn_booster().power_w),
    ]);
    table.row(vec![
        "E-DGCN".to_string(),
        "1 GHz @ 4,096 MACs (8x8 PEs)".to_string(),
        format!("{:.2e}", edgcn::edgcn().effective_macs_per_sec),
        "256 GB/s HBM 2.0".to_string(),
        format!("{:.0}", edgcn::edgcn().power_w),
    ]);
    table.row(vec![
        "Cambricon-DG".to_string(),
        "1 GHz @ 4,096 MACs (1 DU, 32 TU, 32 SU)".to_string(),
        format!(
            "{:.2e}",
            cambricon_dg::cambricon_dg().effective_macs_per_sec
        ),
        "256 GB/s HBM 2.0".to_string(),
        format!("{:.0}", cambricon_dg::cambricon_dg().power_w),
    ]);
    table.row(vec![
        "TaGNN".to_string(),
        format!(
            "{} MHz @ {} MACs ({} DCUs x {} CPE + {} APE)",
            tagnn.clock_mhz, tagnn.num_macs, tagnn.num_dcus, tagnn.cpes_per_dcu, tagnn.apes_per_dcu
        ),
        format!("{:.2e}", tagnn.num_macs as f64 * tagnn.cycles_per_sec()),
        "256 GB/s HBM 2.0".to_string(),
        format!("{:.0}", tagnn.power_w),
    ]);
    let mut metrics = BTreeMap::new();
    metrics.insert("tagnn_macs".into(), tagnn.num_macs as f64);
    metrics.insert("tagnn_clock_mhz".into(), tagnn.clock_mhz as f64);
    metrics.insert(
        "tagnn_buffer_bytes".into(),
        tagnn.buffers.total_bytes() as f64,
    );
    let _ = ctx;
    ExperimentResult {
        id: "table4".into(),
        title: "System configurations of compared accelerators".into(),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_requested_datasets() {
        let ctx = ExperimentContext::quick();
        let r = table2(&ctx);
        assert_eq!(r.table.len(), ctx.datasets.len());
        assert!(r.metric("GT_vertices") > 0.0);
    }

    #[test]
    fn table3_has_five_resource_rows() {
        let r = table3(&ExperimentContext::quick());
        assert_eq!(r.table.len(), 5);
        assert!(r.metric("dsp_T-GCN") < r.metric("dsp_GC-LSTM"));
    }

    #[test]
    fn table4_lists_four_accelerators() {
        let r = table4(&ExperimentContext::quick());
        assert_eq!(r.table.len(), 4);
        assert_eq!(r.metric("tagnn_macs"), 4096.0);
    }
}
