//! The motivation studies of §2.2–2.3: Figures 2(a–d) and 3(a–b).

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_f, fmt_pct, TextTable};
use std::collections::BTreeMap;
use tagnn_graph::stats::unaffected_ratio;
use tagnn_models::accuracy::EvalTask;
use tagnn_models::approx::{run_approx_rnn, ApproxMethod};
use tagnn_models::{ModelKind, SkipConfig};
use tagnn_sim::baselines::gpu_pipad;
use tagnn_tensor::similarity::cosine;

/// Fig. 2(a): execution-time breakdown of PiPAD (aggregation, combination,
/// update, others) across models and datasets.
pub fn fig2a(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Model",
        "Dataset",
        "Aggregation",
        "Combination",
        "Update",
        "Others",
    ]);
    let mut metrics = BTreeMap::new();
    let pipad = gpu_pipad::pipad();
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.pipeline(ds, model);
            let (agg, comb, upd, other) = pipad.phase_breakdown(p.workload());
            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                fmt_pct(agg),
                fmt_pct(comb),
                fmt_pct(upd),
                fmt_pct(other),
            ]);
            metrics.insert(format!("agg_{}_{}", model.name(), ds.abbrev()), agg);
            metrics.insert(format!("upd_{}_{}", model.name(), ds.abbrev()), upd);
        }
    }
    ExperimentResult {
        id: "fig2a".into(),
        title: "Execution-time breakdown of PiPAD".into(),
        table,
        metrics,
    }
}

/// Fig. 2(b): execution time of GPU DGNN systems normalised to PyGT
/// (T-GCN).
pub fn fig2b(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec!["Dataset", "PyGT", "CacheG", "ESDG", "PiPAD"]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let w = p.workload();
        let base = gpu_pipad::pygt().estimate(w).time_ms;
        let cacheg = gpu_pipad::cacheg().estimate(w).time_ms / base;
        let esdg = gpu_pipad::esdg().estimate(w).time_ms / base;
        let pipad = gpu_pipad::pipad().estimate(w).time_ms / base;
        table.row(vec![
            ds.abbrev().to_string(),
            "1.00".to_string(),
            fmt_f(cacheg),
            fmt_f(esdg),
            fmt_f(pipad),
        ]);
        metrics.insert(format!("pipad_norm_{}", ds.abbrev()), pipad);
    }
    ExperimentResult {
        id: "fig2b".into(),
        title: "Execution time normalised to PyGT (T-GCN)".into(),
        table,
        metrics,
    }
}

/// Fig. 2(c): ratio of fetched useful data to all accesses across four
/// snapshots (T-GCN). Baseline ratios come from their platform models;
/// TaGNN-S's is measured from its reuse accounting.
pub fn fig2c(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "PyGT",
        "CacheG",
        "ESDG",
        "PiPAD",
        "TaGNN-S (measured)",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let w = p.workload();
        // Measured: of all the row touches TaGNN-S's pattern makes, the
        // loaded fraction is what actually travels; the rest is reuse.
        let touches = w.concurrent.feature_rows_loaded + w.concurrent.feature_rows_reused;
        let measured = 1.0 - w.concurrent.feature_rows_loaded as f64 / touches.max(1) as f64;
        // Useful fraction of *traffic* for TaGNN-S: loaded rows are all
        // useful, so report the platform model's ratio for baselines and
        // the reuse-implied effective ratio for TaGNN-S.
        let tagnn_s_ratio = gpu_pipad::tagnn_s().useful_data_ratio;
        table.row(vec![
            ds.abbrev().to_string(),
            fmt_pct(gpu_pipad::pygt().useful_data_ratio),
            fmt_pct(gpu_pipad::cacheg().useful_data_ratio),
            fmt_pct(gpu_pipad::esdg().useful_data_ratio),
            fmt_pct(gpu_pipad::pipad().useful_data_ratio),
            format!("{} (reuse {})", fmt_pct(tagnn_s_ratio), fmt_pct(measured)),
        ]);
        metrics.insert(format!("reuse_{}", ds.abbrev()), measured);
        metrics.insert(
            format!("pipad_useful_{}", ds.abbrev()),
            gpu_pipad::pipad().useful_data_ratio,
        );
    }
    ExperimentResult {
        id: "fig2c".into(),
        title: "Useful-data ratio of fetched data (window = 4, T-GCN)".into(),
        table,
        metrics,
    }
}

/// Fig. 2(d): PiPAD latency breakdown and SM utilisation on the A100.
pub fn fig2d(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "Memory",
        "Compute",
        "Overhead",
        "SM utilisation",
    ]);
    let mut metrics = BTreeMap::new();
    let pipad = gpu_pipad::pipad();
    // A100 peak is ~19.5 TFLOP/s fp32; PiPAD's sustained rate implies the
    // SM utilisation cap the paper reports (< 22.3 %).
    let sm_util = pipad.effective_macs_per_sec / 9.75e12;
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let r = pipad.estimate(p.workload());
        let total = r.memory_ms + r.compute_ms + r.overhead_ms;
        let mem_frac = r.memory_ms / total;
        table.row(vec![
            ds.abbrev().to_string(),
            fmt_pct(mem_frac),
            fmt_pct(r.compute_ms / total),
            fmt_pct(r.overhead_ms / total),
            fmt_pct(sm_util),
        ]);
        metrics.insert(format!("mem_frac_{}", ds.abbrev()), mem_frac);
    }
    metrics.insert("sm_util".into(), sm_util);
    ExperimentResult {
        id: "fig2d".into(),
        title: "Latency breakdown and SM utilisation of PiPAD".into(),
        table,
        metrics,
    }
}

/// Fig. 3(a): ratio of unaffected vertices at window sizes 3 and 4.
pub fn fig3a(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec!["Dataset", "3 snapshots", "4 snapshots"]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let r3 = unaffected_ratio(p.graph(), 3);
        let r4 = unaffected_ratio(p.graph(), 4);
        table.row(vec![ds.abbrev().to_string(), fmt_pct(r3), fmt_pct(r4)]);
        metrics.insert(format!("w3_{}", ds.abbrev()), r3);
        metrics.insert(format!("w4_{}", ds.abbrev()), r4);
    }
    ExperimentResult {
        id: "fig3a".into(),
        title: "Unaffected-vertex ratio across snapshots".into(),
        table,
        metrics,
    }
}

/// Fig. 3(b): effect of the output-feature-difference threshold Δ on final
/// feature similarity and model accuracy (T-GCN on the last configured
/// dataset, standing in for FK), for topology-aware skipping (TaGNN)
/// versus a topology-unaware DeltaRNN-style threshold.
pub fn fig3b(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = *ctx.datasets.last().expect("at least one dataset");
    let p = ctx.accuracy_pipeline(ds, ModelKind::TGcn);
    let exact = p.run_reference();
    let total = exact.final_features.len();
    let last = total - 1;
    let tail = total - ctx.window.min(total)..total;
    let baseline_acc = tagnn_models::accuracy::paper_baseline_accuracy(ModelKind::TGcn, ds);
    let task = EvalTask::new(&exact.final_features[last], baseline_acc, ctx.seed);
    let eval_tail = |hs: &[tagnn_tensor::DenseMatrix]| {
        let refs: Vec<&tagnn_tensor::DenseMatrix> = hs[tail.clone()].iter().collect();
        task.mean_accuracy(&refs)
    };

    let mut table = TextTable::new(vec![
        "Delta",
        "Final-feature similarity",
        "Accuracy (TaGNN)",
        "Accuracy (topology-unaware)",
    ]);
    let mut metrics = BTreeMap::new();
    for step in 0..7 {
        let delta = -0.6 + 0.2 * step as f64;
        // TaGNN: skip whenever the topology-weighted score exceeds delta.
        let skipped =
            p.run_concurrent_with(SkipConfig::with_thresholds(delta as f32, delta as f32));
        // Topology-unaware: element-wise DeltaRNN thresholding at a fixed
        // operating point. It cannot see graph structure, so its accuracy
        // stays depressed across the whole sweep — the paper's Fig. 3(b)
        // observation that T-GCN stays below 54.3% on FK even at large
        // delta.
        let unaware_h = run_approx_rnn(
            p.model(),
            p.graph(),
            &exact.gnn_outputs,
            ApproxMethod::DeltaRnn { threshold: 0.30 },
        );

        // Final-feature similarity: mean cosine between skipped and exact.
        let a = &exact.final_features[last];
        let b = &skipped.final_features[last];
        let mut sim = 0.0;
        for v in 0..a.rows() {
            sim += cosine(a.row(v), b.row(v)) as f64;
        }
        sim /= a.rows() as f64;

        let acc_tagnn = eval_tail(&skipped.final_features);
        let acc_unaware = eval_tail(&unaware_h);
        table.row(vec![
            format!("{delta:.1}"),
            fmt_pct(sim),
            fmt_pct(acc_tagnn),
            fmt_pct(acc_unaware),
        ]);
        metrics.insert(format!("sim_{step}"), sim);
        metrics.insert(format!("acc_tagnn_{step}"), acc_tagnn);
        metrics.insert(format!("acc_unaware_{step}"), acc_unaware);
    }
    metrics.insert("baseline_acc".into(), baseline_acc);
    ExperimentResult {
        id: "fig3b".into(),
        title: format!(
            "Output-feature difference vs similarity and accuracy ({})",
            ds.abbrev()
        ),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick()
    }

    #[test]
    fn fig2a_aggregation_dominates() {
        let r = fig2a(&ctx());
        // §2.2: aggregation + update are consistently the heavy phases.
        for (k, v) in &r.metrics {
            if k.starts_with("agg_") {
                assert!(*v > 0.3, "{k} = {v} too small");
            }
        }
    }

    #[test]
    fn fig2b_pipad_is_fastest() {
        let r = fig2b(&ctx());
        for (k, v) in &r.metrics {
            if k.starts_with("pipad_norm_") {
                assert!(*v < 1.0, "{k}: PiPAD must beat PyGT");
            }
        }
    }

    #[test]
    fn fig2d_memory_dominates() {
        let r = fig2d(&ctx());
        // §2.2: memory access accounts for ~70 % of PiPAD's time.
        for (k, v) in &r.metrics {
            if k.starts_with("mem_frac_") {
                assert!(*v > 0.4, "{k} = {v}");
            }
        }
        assert!(
            r.metric("sm_util") < 0.223,
            "Fig 2d: SM utilisation below 22.3%"
        );
    }

    #[test]
    fn fig3a_ratio_shrinks_with_window() {
        let r = fig3a(&ctx());
        for ds in &ctx().datasets {
            assert!(
                r.metric(&format!("w4_{}", ds.abbrev()))
                    <= r.metric(&format!("w3_{}", ds.abbrev())) + 1e-9
            );
        }
    }

    #[test]
    fn fig3b_tagnn_beats_unaware_at_conservative_thresholds() {
        let r = fig3b(&ctx());
        // At the conservative end of the sweep TaGNN approaches baseline
        // while the topology-unaware method stays lossy (the paper's
        // Fig. 3b message).
        assert!(
            r.metric("acc_tagnn_6") + 0.02 >= r.metric("acc_unaware_6"),
            "conservative TaGNN must not lose to the unaware baseline: {} vs {}",
            r.metric("acc_tagnn_6"),
            r.metric("acc_unaware_6")
        );
        // Similarity rises along the sweep.
        assert!(r.metric("sim_6") + 1e-9 >= r.metric("sim_0"));
    }
}
