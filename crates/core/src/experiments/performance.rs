//! The headline performance comparisons: Figures 8(a–b), 9, 10, and 11.

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_f, fmt_pct, fmt_x, TextTable};
use std::collections::BTreeMap;
use tagnn_models::ModelKind;
use tagnn_sim::baselines::{cambricon_dg, cpu_dgl, dgnn_booster, edgcn, gpu_pipad};
use tagnn_sim::{AcceleratorConfig, TagnnSimulator};

/// Fig. 8(a): TaGNN-S versus the software systems with time decomposed
/// into memory access, computation, and runtime overhead (T-GCN,
/// window 4), normalised to DGL-CPU.
pub fn fig8a(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "System",
        "Total (norm.)",
        "Memory",
        "Compute",
        "Overhead",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let w = p.workload();
        let base = cpu_dgl::dgl_cpu().estimate(w).time_ms;
        for platform in [
            cpu_dgl::dgl_cpu(),
            gpu_pipad::pygt(),
            gpu_pipad::cacheg(),
            gpu_pipad::esdg(),
            gpu_pipad::pipad(),
            gpu_pipad::tagnn_s(),
        ] {
            let r = platform.estimate(w);
            let raw = r.memory_ms + r.compute_ms + r.overhead_ms;
            table.row(vec![
                ds.abbrev().to_string(),
                platform.name.clone(),
                fmt_f(r.time_ms / base),
                fmt_pct(r.memory_ms / raw),
                fmt_pct(r.compute_ms / raw),
                fmt_pct(r.overhead_ms / raw),
            ]);
            metrics.insert(
                format!("{}_{}_norm", platform.name, ds.abbrev()),
                r.time_ms / base,
            );
            if platform.name == "TaGNN-S" {
                metrics.insert(
                    format!("tagnn_s_overhead_{}", ds.abbrev()),
                    r.overhead_ms / raw,
                );
            }
        }
    }
    ExperimentResult {
        id: "fig8a".into(),
        title: "TaGNN-S vs software systems, time decomposed (T-GCN, K=4)".into(),
        table,
        metrics,
    }
}

/// Fig. 8(b): memory-access breakdown — redundant-access and unnecessary-
/// computation reductions of TaGNN-S versus the snapshot-by-snapshot
/// pattern (T-GCN).
pub fn fig8b(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Dataset",
        "Redundant access reduction",
        "Unnecessary compute reduction",
        "RNN update reduction",
    ]);
    let mut metrics = BTreeMap::new();
    for &ds in &ctx.datasets {
        let p = ctx.pipeline(ds, ModelKind::TGcn);
        let w = p.workload();
        let access = 1.0
            - w.concurrent.feature_rows_loaded as f64
                / w.reference.feature_rows_loaded.max(1) as f64;
        let gnn = 1.0
            - (w.concurrent.gnn_aggregate_macs + w.concurrent.gnn_combine_macs) as f64
                / (w.reference.gnn_aggregate_macs + w.reference.gnn_combine_macs).max(1) as f64;
        let rnn = 1.0 - w.concurrent.rnn_macs as f64 / w.reference.rnn_macs.max(1) as f64;
        table.row(vec![
            ds.abbrev().to_string(),
            fmt_pct(access),
            fmt_pct(gnn),
            fmt_pct(rnn),
        ]);
        metrics.insert(format!("access_red_{}", ds.abbrev()), access);
        metrics.insert(format!("gnn_red_{}", ds.abbrev()), gnn);
        metrics.insert(format!("rnn_red_{}", ds.abbrev()), rnn);
    }
    ExperimentResult {
        id: "fig8b".into(),
        title: "Memory-access and computation reductions of TaGNN-S (T-GCN)".into(),
        table,
        metrics,
    }
}

/// Fig. 9: comparative performance of DGL-CPU, PiPAD, TaGNN-S, and TaGNN,
/// reported as speedup over DGL-CPU for all models and datasets plus the
/// average.
pub fn fig9(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Model",
        "Dataset",
        "PiPAD",
        "TaGNN-S",
        "TaGNN",
        "TaGNN vs PiPAD",
    ]);
    let mut metrics = BTreeMap::new();
    let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let (mut sum_cpu, mut sum_gpu, mut count) = (0.0, 0.0, 0);
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.pipeline(ds, model);
            let w = p.workload();
            let cpu = cpu_dgl::dgl_cpu().estimate(w).time_ms;
            let pipad = gpu_pipad::pipad().estimate(w).time_ms;
            let tagnn_s = gpu_pipad::tagnn_s().estimate(w).time_ms;
            let tagnn = sim.simulate(p.graph(), w).time_ms;
            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                fmt_x(cpu / pipad),
                fmt_x(cpu / tagnn_s),
                fmt_x(cpu / tagnn),
                fmt_x(pipad / tagnn),
            ]);
            metrics.insert(
                format!("tagnn_vs_cpu_{}_{}", model.name(), ds.abbrev()),
                cpu / tagnn,
            );
            metrics.insert(
                format!("tagnn_vs_pipad_{}_{}", model.name(), ds.abbrev()),
                pipad / tagnn,
            );
            sum_cpu += cpu / tagnn;
            sum_gpu += pipad / tagnn;
            count += 1;
        }
    }
    let avg_cpu = sum_cpu / count as f64;
    let avg_gpu = sum_gpu / count as f64;
    table.row(vec![
        "AVG".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        fmt_x(avg_cpu),
        fmt_x(avg_gpu),
    ]);
    metrics.insert("avg_tagnn_vs_cpu".into(), avg_cpu);
    metrics.insert("avg_tagnn_vs_pipad".into(), avg_gpu);
    ExperimentResult {
        id: "fig9".into(),
        title: "Speedup over DGL-CPU (paper: TaGNN 535.2x avg vs CPU, 84.3x vs PiPAD)".into(),
        table,
        metrics,
    }
}

/// Fig. 10: TaGNN versus the prior DGNN accelerators, normalised to
/// DGNN-Booster.
pub fn fig10(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec!["Model", "Dataset", "E-DGCN", "Cambricon-DG", "TaGNN"]);
    let mut metrics = BTreeMap::new();
    let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let (mut s_booster, mut s_edgcn, mut s_cam, mut count) = (0.0, 0.0, 0.0, 0);
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.pipeline(ds, model);
            let w = p.workload();
            let booster = dgnn_booster::dgnn_booster().estimate(w).time_ms;
            let e = edgcn::edgcn().estimate(w).time_ms;
            let cam = cambricon_dg::cambricon_dg().estimate(w).time_ms;
            let tagnn = sim.simulate(p.graph(), w).time_ms;
            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                fmt_x(booster / e),
                fmt_x(booster / cam),
                fmt_x(booster / tagnn),
            ]);
            s_booster += booster / tagnn;
            s_edgcn += e / tagnn;
            s_cam += cam / tagnn;
            count += 1;
        }
    }
    let n = count as f64;
    metrics.insert("avg_vs_booster".into(), s_booster / n);
    metrics.insert("avg_vs_edgcn".into(), s_edgcn / n);
    metrics.insert("avg_vs_cambricon".into(), s_cam / n);
    table.row(vec![
        "AVG (TaGNN vs)".to_string(),
        "-".to_string(),
        fmt_x(s_edgcn / n),
        fmt_x(s_cam / n),
        fmt_x(s_booster / n),
    ]);
    ExperimentResult {
        id: "fig10".into(),
        title: "Speedup normalised to DGNN-Booster (paper: 13.5x/10.2x/6.5x avg)".into(),
        table,
        metrics,
    }
}

/// Fig. 11: energy consumption of every solution normalised to TaGNN.
pub fn fig11(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Model",
        "Dataset",
        "DGL-CPU",
        "PiPAD",
        "DGNN-Booster",
        "E-DGCN",
        "Cambricon-DG",
    ]);
    let mut metrics = BTreeMap::new();
    let sim = TagnnSimulator::new(AcceleratorConfig::tagnn_default());
    let mut sums = [0.0f64; 5];
    let mut count = 0;
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.pipeline(ds, model);
            let w = p.workload();
            let tagnn = sim.simulate(p.graph(), w).energy_mj;
            let values = [
                cpu_dgl::dgl_cpu().estimate(w).energy_mj / tagnn,
                gpu_pipad::pipad().estimate(w).energy_mj / tagnn,
                dgnn_booster::dgnn_booster().estimate(w).energy_mj / tagnn,
                edgcn::edgcn().estimate(w).energy_mj / tagnn,
                cambricon_dg::cambricon_dg().estimate(w).energy_mj / tagnn,
            ];
            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                fmt_x(values[0]),
                fmt_x(values[1]),
                fmt_x(values[2]),
                fmt_x(values[3]),
                fmt_x(values[4]),
            ]);
            for (s, v) in sums.iter_mut().zip(values) {
                *s += v;
            }
            count += 1;
        }
    }
    let n = count as f64;
    for (key, s) in ["cpu", "pipad", "booster", "edgcn", "cambricon"]
        .iter()
        .zip(sums)
    {
        metrics.insert(format!("avg_energy_vs_{key}"), s / n);
    }
    table.row(vec![
        "AVG".to_string(),
        "-".to_string(),
        fmt_x(sums[0] / n),
        fmt_x(sums[1] / n),
        fmt_x(sums[2] / n),
        fmt_x(sums[3] / n),
        fmt_x(sums[4] / n),
    ]);
    ExperimentResult {
        id: "fig11".into(),
        title: "Energy normalised to TaGNN (paper: 742.6x CPU, 104.9x GPU, 15.9/11.7/7.8x accels)"
            .into(),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick()
    }

    #[test]
    fn fig8a_tagnn_s_beats_pipad_everywhere() {
        let r = fig8a(&ctx());
        for ds in &ctx().datasets {
            let ts = r.metric(&format!("TaGNN-S_{}_norm", ds.abbrev()));
            let pp = r.metric(&format!("PiPAD_{}_norm", ds.abbrev()));
            assert!(
                ts < pp,
                "{}: TaGNN-S {ts} must beat PiPAD {pp}",
                ds.abbrev()
            );
            let overhead = r.metric(&format!("tagnn_s_overhead_{}", ds.abbrev()));
            assert!(
                overhead > 0.35,
                "TaGNN-S runtime overhead should be large: {overhead}"
            );
        }
    }

    #[test]
    fn fig8b_reductions_are_positive() {
        let r = fig8b(&ctx());
        for (k, v) in &r.metrics {
            assert!(*v > 0.0, "{k} = {v} must be a reduction");
            assert!(*v < 1.0);
        }
    }

    #[test]
    fn fig9_ordering_cpu_gpu_tagnn() {
        let r = fig9(&ctx());
        let vs_cpu = r.metric("avg_tagnn_vs_cpu");
        let vs_gpu = r.metric("avg_tagnn_vs_pipad");
        assert!(vs_cpu > vs_gpu, "CPU speedup must exceed GPU speedup");
        assert!(vs_gpu > 1.0);
        // Order-of-magnitude shape: hundreds vs CPU, tens vs GPU.
        assert!(vs_cpu > 50.0, "vs CPU {vs_cpu} too small");
        assert!(vs_gpu > 5.0, "vs PiPAD {vs_gpu} too small");
    }

    #[test]
    fn fig10_ordering_matches_paper() {
        let r = fig10(&ctx());
        let b = r.metric("avg_vs_booster");
        let e = r.metric("avg_vs_edgcn");
        let c = r.metric("avg_vs_cambricon");
        assert!(
            b > e && e > c,
            "speedup order must be booster > edgcn > cambricon: {b} {e} {c}"
        );
        assert!(c > 1.0, "TaGNN must beat Cambricon-DG");
    }

    #[test]
    fn fig11_everyone_burns_more_energy() {
        let r = fig11(&ctx());
        for (k, v) in &r.metrics {
            assert!(*v > 1.0, "{k} = {v}: TaGNN must be the most efficient");
        }
        assert!(r.metric("avg_energy_vs_cpu") > r.metric("avg_energy_vs_pipad"));
        assert!(r.metric("avg_energy_vs_booster") > r.metric("avg_energy_vs_cambricon"));
    }
}
