//! Sensitivity studies: Figure 14(a–d).

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::{fmt_f, fmt_pct, TextTable};
use std::collections::BTreeMap;
use tagnn_models::accuracy::{paper_baseline_accuracy, EvalTask};
use tagnn_models::{ModelKind, SkipConfig};
use tagnn_sim::baselines::{cambricon_dg, dgnn_booster, edgcn};
use tagnn_sim::{AcceleratorConfig, TagnnSimulator, Workload};

fn sensitivity_dataset(ctx: &ExperimentContext) -> tagnn_graph::DatasetPreset {
    // The paper sweeps on FK; fall back to the last configured dataset.
    *ctx.datasets.last().expect("at least one dataset")
}

/// Fig. 14(a): sensitivity to the thresholds `[θs, θe]` — skip rate,
/// simulated time, and accuracy across threshold intervals (T-GCN).
pub fn fig14a(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = sensitivity_dataset(ctx);
    let p = ctx.accuracy_pipeline(ds, ModelKind::TGcn);
    let exact = p.run_reference();
    let total = exact.final_features.len();
    let tail = total - ctx.window.min(total)..total;
    let task = EvalTask::new(
        &exact.final_features[total - 1],
        paper_baseline_accuracy(ModelKind::TGcn, ds),
        ctx.seed,
    );
    let eval_tail = |hs: &[tagnn_tensor::DenseMatrix]| {
        let refs: Vec<&tagnn_tensor::DenseMatrix> = hs[tail.clone()].iter().collect();
        task.mean_accuracy(&refs)
    };

    let mut table = TextTable::new(vec![
        "[theta_s, theta_e]",
        "Skip ratio",
        "Time (norm.)",
        "Accuracy",
    ]);
    let mut metrics = BTreeMap::new();
    // Ordered from aggressive (skip almost everything) to conservative
    // (skip almost nothing).
    let intervals: [(f32, f32); 5] = [
        (-0.9, -0.5),
        (-0.5, 0.5),
        (-0.1, 0.1),
        (0.5, 0.9),
        (0.9, 0.9),
    ];
    let mut base_time = None;
    for (i, &(ts, te)) in intervals.iter().enumerate() {
        let skip = SkipConfig::with_thresholds(ts, te);
        let out = p.run_concurrent_with(skip);
        let workload = Workload::measure(
            p.graph(),
            p.name(),
            ModelKind::TGcn,
            ctx.hidden,
            ctx.window,
            skip,
            ctx.seed,
        );
        let sim =
            TagnnSimulator::new(AcceleratorConfig::tagnn_default()).simulate(p.graph(), &workload);
        let base = *base_time.get_or_insert(sim.time_ms);
        let acc = eval_tail(&out.final_features);
        let skip_ratio = out.stats.skip.skip_ratio();
        table.row(vec![
            format!("[{ts:.1}, {te:.1}]"),
            fmt_pct(skip_ratio),
            fmt_f(sim.time_ms / base),
            fmt_pct(acc),
        ]);
        metrics.insert(format!("skip_{i}"), skip_ratio);
        metrics.insert(format!("time_{i}"), sim.time_ms / base);
        metrics.insert(format!("acc_{i}"), acc);
    }
    ExperimentResult {
        id: "fig14a".into(),
        title: format!(
            "Sensitivity to [theta_s, theta_e] on {} (paper: [-0.5, 0.5] optimal)",
            ds.abbrev()
        ),
        table,
        metrics,
    }
}

/// Fig. 14(b): sensitivity to the number of DCUs (T-GCN).
pub fn fig14b(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = sensitivity_dataset(ctx);
    let p = ctx.pipeline(ds, ModelKind::TGcn);
    let mut table = TextTable::new(vec!["DCUs", "Time (ms)", "Speedup vs 1 DCU"]);
    let mut metrics = BTreeMap::new();
    let mut base = None;
    for dcus in [1usize, 2, 4, 8, 16, 32] {
        let cfg = AcceleratorConfig::tagnn_default().with_dcus(dcus);
        let r = TagnnSimulator::new(cfg).simulate(p.graph(), p.workload());
        let b = *base.get_or_insert(r.time_ms);
        table.row(vec![
            dcus.to_string(),
            fmt_f(r.time_ms),
            fmt_f(b / r.time_ms),
        ]);
        metrics.insert(format!("time_dcus_{dcus}"), r.time_ms);
    }
    ExperimentResult {
        id: "fig14b".into(),
        title: "Sensitivity to the number of DCUs (paper: saturates at 16)".into(),
        table,
        metrics,
    }
}

/// Fig. 14(c): sensitivity to the number of snapshots per batch, against
/// the prior accelerators (T-GCN).
pub fn fig14c(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = sensitivity_dataset(ctx);
    let mut table = TextTable::new(vec![
        "K",
        "TaGNN (ms)",
        "DGNN-Booster (ms)",
        "E-DGCN (ms)",
        "Cambricon-DG (ms)",
    ]);
    let mut metrics = BTreeMap::new();
    for k in [1usize, 2, 4, 6, 8] {
        let p = crate::pipeline::TagnnPipeline::builder()
            .dataset(ds)
            .model(ModelKind::TGcn)
            .snapshots(ctx.snapshots.max(k))
            .window(k)
            .hidden(ctx.hidden)
            .scale(ctx.scale)
            .seed(ctx.seed)
            .build();
        let w = p.workload();
        let tagnn = TagnnSimulator::new(AcceleratorConfig::tagnn_default())
            .simulate(p.graph(), w)
            .time_ms;
        table.row(vec![
            k.to_string(),
            fmt_f(tagnn),
            fmt_f(dgnn_booster::dgnn_booster().estimate(w).time_ms),
            fmt_f(edgcn::edgcn().estimate(w).time_ms),
            fmt_f(cambricon_dg::cambricon_dg().estimate(w).time_ms),
        ]);
        metrics.insert(format!("tagnn_k{k}"), tagnn);
    }
    ExperimentResult {
        id: "fig14c".into(),
        title: format!(
            "Sensitivity to snapshots per batch on {} (paper: optimum near K=4)",
            ds.abbrev()
        ),
        table,
        metrics,
    }
}

/// Fig. 14(d): sensitivity to the number of MAC units (T-GCN).
pub fn fig14d(ctx: &ExperimentContext) -> ExperimentResult {
    let ds = sensitivity_dataset(ctx);
    let p = ctx.pipeline(ds, ModelKind::TGcn);
    let mut table = TextTable::new(vec!["MACs", "Time (ms)", "Speedup vs 512"]);
    let mut metrics = BTreeMap::new();
    let mut base = None;
    for macs in [512usize, 1024, 2048, 4096, 8192] {
        let cfg = AcceleratorConfig::tagnn_default().with_macs(macs);
        let r = TagnnSimulator::new(cfg).simulate(p.graph(), p.workload());
        let b = *base.get_or_insert(r.time_ms);
        table.row(vec![
            macs.to_string(),
            fmt_f(r.time_ms),
            fmt_f(b / r.time_ms),
        ]);
        metrics.insert(format!("time_macs_{macs}"), r.time_ms);
    }
    ExperimentResult {
        id: "fig14d".into(),
        title: "Sensitivity to the number of MAC units (paper: levels off past 4096)".into(),
        table,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::quick()
    }

    #[test]
    fn fig14a_aggressive_thresholds_skip_more_and_run_faster() {
        let r = fig14a(&ctx());
        // Interval 0 = [-0.9, -0.5] skips everything above -0.5; interval 4
        // = [0.9, 0.9] barely skips.
        assert!(r.metric("skip_0") >= r.metric("skip_4"));
        assert!(r.metric("time_0") <= r.metric("time_4") + 1e-9);
        // Accuracy must not improve by skipping more.
        assert!(r.metric("acc_0") <= r.metric("acc_4") + 0.05);
    }

    #[test]
    fn fig14b_scaling_saturates() {
        let r = fig14b(&ctx());
        let t1 = r.metric("time_dcus_1");
        let t16 = r.metric("time_dcus_16");
        let t32 = r.metric("time_dcus_32");
        assert!(t16 < t1, "more DCUs must help");
        // Saturation: doubling 16 -> 32 helps much less than 1 -> 16.
        let early = t1 / t16;
        let late = t16 / t32;
        assert!(late < early, "scaling must flatten: {early} then {late}");
    }

    #[test]
    fn fig14c_batching_beats_snapshot_by_snapshot() {
        let r = fig14c(&ctx());
        assert!(
            r.metric("tagnn_k4") < r.metric("tagnn_k1"),
            "windowed execution must beat K=1"
        );
    }

    #[test]
    fn fig14d_more_macs_never_hurt() {
        let r = fig14d(&ctx());
        assert!(r.metric("time_macs_8192") <= r.metric("time_macs_512"));
    }
}
