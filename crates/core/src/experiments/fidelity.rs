//! Table 5: inference accuracy of TaGNN versus prior RNN approximation
//! methods (DeltaRNN, ALSTM, ATLAS) applied to the same models.

use crate::experiments::{ExperimentContext, ExperimentResult};
use crate::report::TextTable;
use std::collections::BTreeMap;
use tagnn_models::accuracy::{paper_baseline_accuracy, EvalTask};
use tagnn_models::approx::{run_approx_rnn, ApproxMethod};

/// Table 5: accuracy comparison. Labels are calibrated so the exact model
/// reproduces the paper's baseline accuracy; each approximation then loses
/// accuracy in proportion to how far its predictions drift from exact
/// inference.
pub fn table5(ctx: &ExperimentContext) -> ExperimentResult {
    let mut table = TextTable::new(vec![
        "Model",
        "Dataset",
        "Baseline",
        "TaGNN-DR",
        "TaGNN-AM",
        "TaGNN-AS",
        "TaGNN (ours)",
    ]);
    let mut metrics = BTreeMap::new();
    let mut worst_tagnn_loss = 0.0f64;
    let mut worst_competitor_loss = 0.0f64;
    for &model in &ctx.models {
        for &ds in &ctx.datasets {
            let p = ctx.accuracy_pipeline(ds, model);
            let exact = p.run_reference();
            let total = exact.final_features.len();
            // Evaluate over the final batch so every skipping staleness
            // level (0..K-1) is represented.
            let tail = total - ctx.window.min(total)..total;
            let base_acc = paper_baseline_accuracy(model, ds);
            let task = EvalTask::new(&exact.final_features[total - 1], base_acc, ctx.seed);
            let eval_tail = |hs: &[tagnn_tensor::DenseMatrix]| {
                let refs: Vec<&tagnn_tensor::DenseMatrix> = hs[tail.clone()].iter().collect();
                task.mean_accuracy(&refs)
            };
            let baseline = eval_tail(&exact.final_features);

            let [dr, am, asv] = ApproxMethod::paper_variants().map(|m| {
                let hs = run_approx_rnn(p.model(), p.graph(), &exact.gnn_outputs, m);
                eval_tail(&hs)
            });
            let tagnn = eval_tail(&p.run_concurrent().final_features);

            table.row(vec![
                model.name().to_string(),
                ds.abbrev().to_string(),
                pct(baseline),
                pct(dr),
                pct(am),
                pct(asv),
                pct(tagnn),
            ]);
            let key = format!("{}_{}", model.name(), ds.abbrev());
            metrics.insert(format!("baseline_{key}"), baseline);
            metrics.insert(format!("dr_{key}"), dr);
            metrics.insert(format!("am_{key}"), am);
            metrics.insert(format!("as_{key}"), asv);
            metrics.insert(format!("tagnn_{key}"), tagnn);
            worst_tagnn_loss = worst_tagnn_loss.max(baseline - tagnn);
            worst_competitor_loss = worst_competitor_loss.max(baseline - dr.min(am).min(asv));
        }
    }
    metrics.insert("worst_tagnn_loss".into(), worst_tagnn_loss);
    metrics.insert("worst_competitor_loss".into(), worst_competitor_loss);
    ExperimentResult {
        id: "table5".into(),
        title: "Accuracy of TaGNN vs RNN approximation baselines (paper: TaGNN loses <1%)".into(),
        table,
        metrics,
    }
}

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagnn_loses_less_than_competitors() {
        let r = table5(&ExperimentContext::quick());
        let tagnn = r.metric("worst_tagnn_loss");
        let comp = r.metric("worst_competitor_loss");
        assert!(
            tagnn <= comp,
            "TaGNN's worst accuracy loss ({tagnn}) must not exceed the competitors' ({comp})"
        );
    }

    #[test]
    fn tagnn_loss_is_small() {
        let r = table5(&ExperimentContext::quick());
        // Paper: 0.1-0.9 %. Allow slack for the synthetic task.
        assert!(
            r.metric("worst_tagnn_loss") < 0.10,
            "loss {}",
            r.metric("worst_tagnn_loss")
        );
    }

    #[test]
    fn baselines_track_paper_accuracy() {
        let ctx = ExperimentContext::quick();
        let r = table5(&ctx);
        for model in &ctx.models {
            for ds in &ctx.datasets {
                let measured = r.metric(&format!("baseline_{}_{}", model.name(), ds.abbrev()));
                let target = paper_baseline_accuracy(*model, *ds);
                assert!(
                    (measured - target).abs() < 0.08,
                    "{}/{}: baseline {measured} should approximate {target}",
                    model.name(),
                    ds.abbrev()
                );
            }
        }
    }
}
