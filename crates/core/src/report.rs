//! Plain-text table rendering for the experiment harness.

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible significant digits for table cells.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a ratio as `N.Nx`.
pub fn fmt_x(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.1234), "0.1234");
        assert_eq!(fmt_f(3.24159), "3.24");
        assert_eq!(fmt_f(324.159), "324");
        assert_eq!(fmt_x(5.25), "5.2x");
        assert_eq!(fmt_x(535.2), "535x");
        assert_eq!(fmt_pct(0.425), "42.5%");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
