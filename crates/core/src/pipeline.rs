//! The high-level pipeline API: dataset → model → engine/simulator.

use tagnn_graph::{DatasetPreset, DynamicGraph, GeneratorConfig};
use tagnn_models::{
    ConcurrentEngine, DgnnModel, InferenceOutput, ModelKind, ReferenceEngine, ReuseMode, SkipConfig,
};
use tagnn_sim::{AcceleratorConfig, SimReport, TagnnSimulator, Workload};

/// Builder for a [`TagnnPipeline`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    dataset: Option<DatasetPreset>,
    generator: Option<GeneratorConfig>,
    model: ModelKind,
    hidden: usize,
    window: usize,
    snapshots: usize,
    scale: f64,
    skip: SkipConfig,
    reuse: ReuseMode,
    seed: u64,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            dataset: None,
            generator: None,
            model: ModelKind::TGcn,
            hidden: 32,
            window: 4,
            snapshots: 8,
            scale: 0.05,
            skip: SkipConfig::paper_default(),
            reuse: ReuseMode::PaperWindow,
            seed: 0xD6,
        }
    }
}

impl PipelineBuilder {
    /// Uses a Table 2 dataset preset (scaled synthetic equivalent).
    pub fn dataset(mut self, preset: DatasetPreset) -> Self {
        self.dataset = Some(preset);
        self
    }

    /// Uses a fully custom generator instead of a preset.
    pub fn generator(mut self, config: GeneratorConfig) -> Self {
        self.generator = Some(config);
        self
    }

    /// Selects the DGNN model family.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Hidden (= GNN output) dimensionality.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sliding-window / batch size K.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Number of snapshots to generate.
    pub fn snapshots(mut self, snapshots: usize) -> Self {
        self.snapshots = snapshots;
        self
    }

    /// Dataset scale in `(0, 1]` (fraction of Table 2's full size).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Cell-skipping configuration.
    pub fn skip(mut self, skip: SkipConfig) -> Self {
        self.skip = skip;
        self
    }

    /// GNN reuse mode of the concurrent engine.
    pub fn reuse(mut self, reuse: ReuseMode) -> Self {
        self.reuse = reuse;
        self
    }

    /// RNG seed for weights and workload generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the graph, initialises the model, and measures the
    /// workload.
    pub fn build(self) -> TagnnPipeline {
        let (config, name) = match (&self.generator, self.dataset) {
            (Some(g), _) => (g.clone(), "custom".to_string()),
            (None, Some(preset)) => {
                let mut cfg = preset.config(self.scale.clamp(1e-6, 1.0), self.snapshots);
                // Keep laptop-scale defaults bounded like config_small does.
                cfg.num_vertices = cfg.num_vertices.min(4_000);
                cfg.num_edges = cfg.num_edges.min(24_000);
                cfg.feature_dim = cfg.feature_dim.min(128);
                // Fold the builder seed into the preset's dataset seed so
                // different seeds produce different graph instances.
                cfg.seed = cfg.seed.wrapping_add(self.seed.wrapping_mul(0x9E37_79B9));
                (cfg, preset.abbrev().to_string())
            }
            (None, None) => (GeneratorConfig::tiny(), "tiny".to_string()),
        };
        let graph = config.generate();
        let model = DgnnModel::new(self.model, graph.feature_dim(), self.hidden, self.seed);
        let workload = Workload::measure(
            &graph,
            &name,
            self.model,
            self.hidden,
            self.window,
            self.skip,
            self.seed,
        );
        TagnnPipeline {
            name,
            graph,
            model,
            workload,
            window: self.window,
            skip: self.skip,
            reuse: self.reuse,
        }
    }
}

/// A ready-to-run pipeline: generated graph, initialised model, measured
/// workload.
#[derive(Debug, Clone)]
pub struct TagnnPipeline {
    name: String,
    graph: DynamicGraph,
    model: DgnnModel,
    workload: Workload,
    window: usize,
    skip: SkipConfig,
    reuse: ReuseMode,
}

impl TagnnPipeline {
    /// Starts a builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Wraps an externally produced dynamic graph (e.g. loaded from a
    /// temporal edge list via `tagnn_graph::io`) into a ready pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn from_graph(
        graph: DynamicGraph,
        name: &str,
        model_kind: ModelKind,
        hidden: usize,
        window: usize,
        skip: SkipConfig,
        reuse: ReuseMode,
        seed: u64,
    ) -> Self {
        let model = DgnnModel::new(model_kind, graph.feature_dim(), hidden, seed);
        let workload = Workload::measure(&graph, name, model_kind, hidden, window, skip, seed);
        Self {
            name: name.to_string(),
            graph,
            model,
            workload,
            window,
            skip,
            reuse,
        }
    }

    /// Dataset label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generated dynamic graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The initialised model.
    pub fn model(&self) -> &DgnnModel {
        &self.model
    }

    /// The measured workload (work counters of both execution patterns).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Runs exact snapshot-by-snapshot inference.
    pub fn run_reference(&self) -> InferenceOutput {
        ReferenceEngine::new(self.model.clone()).run(&self.graph)
    }

    /// Runs topology-aware concurrent inference (TaGNN's execution model).
    pub fn run_concurrent(&self) -> InferenceOutput {
        ConcurrentEngine::with_options(self.model.clone(), self.skip, self.window, self.reuse)
            .run(&self.graph)
    }

    /// Runs the concurrent engine with a different skipping configuration.
    pub fn run_concurrent_with(&self, skip: SkipConfig) -> InferenceOutput {
        ConcurrentEngine::with_options(self.model.clone(), skip, self.window, self.reuse)
            .run(&self.graph)
    }

    /// Simulates the measured workload on an accelerator configuration.
    pub fn simulate(&self, config: &AcceleratorConfig) -> SimReport {
        TagnnSimulator::new(config.clone()).simulate(&self.graph, &self.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> TagnnPipeline {
        TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(6)
            .window(3)
            .hidden(8)
            .build()
    }

    #[test]
    fn builds_with_preset() {
        let p = pipeline();
        assert_eq!(p.name(), "GT");
        assert_eq!(p.graph().num_snapshots(), 6);
        assert_eq!(p.workload().window, 3);
    }

    #[test]
    fn engines_produce_outputs() {
        let p = pipeline();
        let r = p.run_reference();
        let c = p.run_concurrent();
        assert_eq!(r.final_features.len(), 6);
        assert_eq!(c.final_features.len(), 6);
    }

    #[test]
    fn simulation_works_end_to_end() {
        let p = pipeline();
        let report = p.simulate(&AcceleratorConfig::tagnn_default());
        assert!(report.cycles > 0);
        assert_eq!(report.workload, "GT");
    }

    #[test]
    fn custom_generator_is_respected() {
        let p = TagnnPipeline::builder()
            .generator(GeneratorConfig::tiny())
            .model(ModelKind::CdGcn)
            .hidden(4)
            .window(2)
            .build();
        assert_eq!(p.name(), "custom");
        assert_eq!(p.graph().num_vertices(), 64);
    }

    #[test]
    fn default_builder_builds_tiny() {
        let p = TagnnPipeline::builder().build();
        assert_eq!(p.name(), "tiny");
    }
}
