//! The high-level pipeline API: dataset → model → window plans →
//! engine/simulator. The builder plans every window once (optionally
//! through a shared [`PlanCache`]) and threads the prebuilt
//! [`WindowPlan`]s into workload measurement, the concurrent engine, and
//! the simulator.

use std::sync::{Arc, Mutex};
use tagnn_graph::plan::{CacheStats, PlanCache, WindowPlan, WindowPlanner};
use tagnn_graph::{DatasetPreset, DynamicGraph, GeneratorConfig};
use tagnn_models::{
    ConcurrentEngine, DgnnModel, InferenceOutput, ModelKind, ReferenceEngine, ReuseMode, SkipConfig,
};
use tagnn_obs::{span as obs_span, Recorder};
use tagnn_sim::{AcceleratorConfig, SimReport, TagnnSimulator, Workload};
use tagnn_tensor::Scratch;

/// Builder for a [`TagnnPipeline`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    dataset: Option<DatasetPreset>,
    generator: Option<GeneratorConfig>,
    model: ModelKind,
    hidden: usize,
    window: usize,
    snapshots: usize,
    scale: f64,
    skip: SkipConfig,
    reuse: ReuseMode,
    seed: u64,
    plan_cache: Option<Arc<PlanCache>>,
    recorder: Option<Arc<Recorder>>,
    overlap: bool,
    lookahead: usize,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            dataset: None,
            generator: None,
            model: ModelKind::TGcn,
            hidden: 32,
            window: 4,
            snapshots: 8,
            scale: 0.05,
            skip: SkipConfig::paper_default(),
            reuse: ReuseMode::PaperWindow,
            seed: 0xD6,
            plan_cache: None,
            recorder: None,
            overlap: false,
            lookahead: 1,
        }
    }
}

impl PipelineBuilder {
    /// Uses a Table 2 dataset preset (scaled synthetic equivalent).
    pub fn dataset(mut self, preset: DatasetPreset) -> Self {
        self.dataset = Some(preset);
        self
    }

    /// Uses a fully custom generator instead of a preset.
    pub fn generator(mut self, config: GeneratorConfig) -> Self {
        self.generator = Some(config);
        self
    }

    /// Selects the DGNN model family.
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Hidden (= GNN output) dimensionality.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sliding-window / batch size K.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Number of snapshots to generate.
    pub fn snapshots(mut self, snapshots: usize) -> Self {
        self.snapshots = snapshots;
        self
    }

    /// Dataset scale in `(0, 1]` (fraction of Table 2's full size).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Cell-skipping configuration.
    pub fn skip(mut self, skip: SkipConfig) -> Self {
        self.skip = skip;
        self
    }

    /// GNN reuse mode of the concurrent engine.
    pub fn reuse(mut self, reuse: ReuseMode) -> Self {
        self.reuse = reuse;
        self
    }

    /// RNG seed for weights and workload generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Shares a window-plan cache: pipelines over the same graph content
    /// and window size reuse each other's plans instead of re-running the
    /// MSDL frontend.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Attaches a tagnn-obs recorder: the build (generation, planning,
    /// workload measurement) and every later engine/simulator run on the
    /// built pipeline record phase spans and publish their counters.
    /// Without one, the pipeline behaves exactly as before.
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Enables plan/execute overlap: [`TagnnPipeline::run_concurrent`]
    /// routes through the bounded-lookahead pipelined executor (a
    /// background planner thread builds window W+1's plan while W
    /// executes) instead of the plan-everything-then-run path. Output
    /// bits are identical either way.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Planner lookahead depth (how many windows may be staged ahead of
    /// execution before the planner blocks). Only meaningful with
    /// [`Self::overlap`]; must be at least 1.
    ///
    /// # Panics
    /// Panics if `lookahead == 0`.
    pub fn lookahead(mut self, lookahead: usize) -> Self {
        assert!(lookahead > 0, "lookahead must be at least 1");
        self.lookahead = lookahead;
        self
    }

    /// Generates the graph, plans its windows, initialises the model, and
    /// measures the workload.
    pub fn build(self) -> TagnnPipeline {
        let (config, name) = match (&self.generator, self.dataset) {
            (Some(g), _) => (g.clone(), "custom".to_string()),
            (None, Some(preset)) => {
                let mut cfg = preset.config(self.scale.clamp(1e-6, 1.0), self.snapshots);
                // Keep laptop-scale defaults bounded like config_small does.
                cfg.num_vertices = cfg.num_vertices.min(4_000);
                cfg.num_edges = cfg.num_edges.min(24_000);
                cfg.feature_dim = cfg.feature_dim.min(128);
                // Fold the builder seed into the preset's dataset seed so
                // different seeds produce different graph instances.
                cfg.seed = cfg.seed.wrapping_add(self.seed.wrapping_mul(0x9E37_79B9));
                (cfg, preset.abbrev().to_string())
            }
            (None, None) => (GeneratorConfig::tiny(), "tiny".to_string()),
        };
        let rec = self.recorder.as_deref();
        let graph = {
            let _span = obs_span(rec, "generate");
            config.generate()
        };
        let (plans, plan_cache_delta) =
            plan_windows(&graph, self.window, self.plan_cache.as_deref(), rec);
        let model = DgnnModel::new(self.model, graph.feature_dim(), self.hidden, self.seed);
        let workload = {
            let _span = obs_span(rec, "measure");
            Workload::measure_with_plans_traced(
                &graph,
                &name,
                self.model,
                self.hidden,
                self.window,
                self.skip,
                self.seed,
                &plans,
                rec,
            )
        };
        TagnnPipeline {
            name,
            graph,
            model,
            workload,
            plans,
            plan_cache_delta,
            window: self.window,
            skip: self.skip,
            reuse: self.reuse,
            recorder: self.recorder,
            overlap: self.overlap,
            lookahead: self.lookahead,
            scratch: Arc::new(Mutex::new(Scratch::new())),
        }
    }
}

/// Plans every window of `graph`, through `cache` when one is shared,
/// returning the plans plus the cache hit/miss delta this planning pass
/// produced (zero when uncached).
fn plan_windows(
    graph: &DynamicGraph,
    window: usize,
    cache: Option<&PlanCache>,
    rec: Option<&Recorder>,
) -> (Vec<Arc<WindowPlan>>, CacheStats) {
    let planner = WindowPlanner::new(window);
    match cache {
        Some(cache) => {
            let before = cache.stats();
            let plans = planner.plan_graph_cached_traced(graph, cache, rec);
            (plans, cache.stats().since(before))
        }
        None => (planner.plan_graph_traced(graph, rec), CacheStats::default()),
    }
}

/// A ready-to-run pipeline: generated graph, prebuilt window plans,
/// initialised model, measured workload.
#[derive(Debug, Clone)]
pub struct TagnnPipeline {
    name: String,
    graph: DynamicGraph,
    model: DgnnModel,
    workload: Workload,
    plans: Vec<Arc<WindowPlan>>,
    plan_cache_delta: CacheStats,
    window: usize,
    skip: SkipConfig,
    reuse: ReuseMode,
    recorder: Option<Arc<Recorder>>,
    overlap: bool,
    lookahead: usize,
    scratch: Arc<Mutex<Scratch>>,
}

impl TagnnPipeline {
    /// Starts a builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Wraps an externally produced dynamic graph (e.g. loaded from a
    /// temporal edge list via `tagnn_graph::io`) into a ready pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn from_graph(
        graph: DynamicGraph,
        name: &str,
        model_kind: ModelKind,
        hidden: usize,
        window: usize,
        skip: SkipConfig,
        reuse: ReuseMode,
        seed: u64,
    ) -> Self {
        let model = DgnnModel::new(model_kind, graph.feature_dim(), hidden, seed);
        let (plans, plan_cache_delta) = plan_windows(&graph, window, None, None);
        let workload = Workload::measure_with_plans(
            &graph, name, model_kind, hidden, window, skip, seed, &plans,
        );
        Self {
            name: name.to_string(),
            graph,
            model,
            workload,
            plans,
            plan_cache_delta,
            window,
            skip,
            reuse,
            recorder: None,
            overlap: false,
            lookahead: 1,
            scratch: Arc::new(Mutex::new(Scratch::new())),
        }
    }

    /// Attaches (or replaces) the tagnn-obs recorder used by later
    /// engine/simulator runs on this pipeline.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Dataset label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generated dynamic graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The initialised model.
    pub fn model(&self) -> &DgnnModel {
        &self.model
    }

    /// The measured workload (work counters of both execution patterns).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Window size K.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The prebuilt window plans (one per non-overlapping window).
    pub fn plans(&self) -> &[Arc<WindowPlan>] {
        &self.plans
    }

    /// Plan-cache hits/misses this pipeline's planning pass produced
    /// (all-zero when no cache was shared).
    pub fn plan_cache_delta(&self) -> CacheStats {
        self.plan_cache_delta
    }

    /// Runs exact snapshot-by-snapshot inference. Repeated runs on the
    /// same pipeline reuse one scratch arena, so only the first run pays
    /// the workspace allocations.
    pub fn run_reference(&self) -> InferenceOutput {
        let mut scratch = self.scratch.lock().expect("scratch arena poisoned");
        ReferenceEngine::new(self.model.clone()).run_traced_scratch(
            &self.graph,
            self.recorder.as_deref(),
            &mut scratch,
        )
    }

    /// Whether [`Self::run_concurrent`] routes through the pipelined
    /// overlap executor.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap
    }

    /// The planner lookahead depth the overlap path uses.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Runs topology-aware concurrent inference (TaGNN's execution model).
    /// Without overlap this executes over the prebuilt plans, reusing
    /// the pipeline's scratch arena; with [`PipelineBuilder::overlap`]
    /// it routes through [`Self::run_concurrent_pipelined`]. Both paths
    /// produce the same bits.
    pub fn run_concurrent(&self) -> InferenceOutput {
        self.run_concurrent_with(self.skip)
    }

    /// Runs the concurrent engine with a different skipping configuration
    /// (the plans are skip-independent and reused as-is).
    pub fn run_concurrent_with(&self, skip: SkipConfig) -> InferenceOutput {
        if self.overlap {
            return self.run_concurrent_pipelined_with(skip, self.lookahead);
        }
        let mut scratch = self.scratch.lock().expect("scratch arena poisoned");
        ConcurrentEngine::with_options(self.model.clone(), skip, self.window, self.reuse)
            .run_with_plans_scratch(
                &self.graph,
                &self.plans,
                self.recorder.as_deref(),
                &mut scratch,
            )
    }

    /// Runs concurrent inference through the bounded-lookahead pipelined
    /// executor: a background planner thread re-derives each window's
    /// plan (so there is genuine plan work to hide — the prebuilt plans
    /// are deliberately not consulted) and prefetches its dispatch
    /// inputs while the engine executes the previous window. Output is
    /// bit-identical to [`Self::run_concurrent`] without overlap.
    pub fn run_concurrent_pipelined(&self, lookahead: usize) -> InferenceOutput {
        self.run_concurrent_pipelined_with(self.skip, lookahead)
    }

    /// [`Self::run_concurrent_pipelined`] under an explicit skip config.
    pub fn run_concurrent_pipelined_with(
        &self,
        skip: SkipConfig,
        lookahead: usize,
    ) -> InferenceOutput {
        ConcurrentEngine::with_options(self.model.clone(), skip, self.window, self.reuse)
            .run_pipelined(&self.graph, self.recorder.as_deref(), lookahead)
    }

    /// Simulates the measured workload on an accelerator configuration,
    /// reusing the prebuilt plans and stamping the planning cache delta
    /// into the report's instrumentation.
    pub fn simulate(&self, config: &AcceleratorConfig) -> SimReport {
        let mut report = TagnnSimulator::new(config.clone()).simulate_with_plans_traced(
            &self.graph,
            &self.workload,
            &self.plans,
            self.recorder.as_deref(),
        );
        report.plan = report.plan.with_cache(self.plan_cache_delta);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> TagnnPipeline {
        TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(6)
            .window(3)
            .hidden(8)
            .build()
    }

    #[test]
    fn builds_with_preset() {
        let p = pipeline();
        assert_eq!(p.name(), "GT");
        assert_eq!(p.graph().num_snapshots(), 6);
        assert_eq!(p.workload().window, 3);
    }

    #[test]
    fn engines_produce_outputs() {
        let p = pipeline();
        let r = p.run_reference();
        let c = p.run_concurrent();
        assert_eq!(r.final_features.len(), 6);
        assert_eq!(c.final_features.len(), 6);
    }

    #[test]
    fn simulation_works_end_to_end() {
        let p = pipeline();
        let report = p.simulate(&AcceleratorConfig::tagnn_default());
        assert!(report.cycles > 0);
        assert_eq!(report.workload, "GT");
    }

    #[test]
    fn custom_generator_is_respected() {
        let p = TagnnPipeline::builder()
            .generator(GeneratorConfig::tiny())
            .model(ModelKind::CdGcn)
            .hidden(4)
            .window(2)
            .build();
        assert_eq!(p.name(), "custom");
        assert_eq!(p.graph().num_vertices(), 64);
    }

    #[test]
    fn default_builder_builds_tiny() {
        let p = TagnnPipeline::builder().build();
        assert_eq!(p.name(), "tiny");
    }

    #[test]
    fn overlap_pipeline_matches_sequential_bits() {
        let seq = pipeline();
        let over = TagnnPipeline::builder()
            .dataset(DatasetPreset::Gdelt)
            .model(ModelKind::TGcn)
            .snapshots(6)
            .window(3)
            .hidden(8)
            .overlap(true)
            .lookahead(2)
            .build();
        assert!(over.overlap_enabled());
        let a = seq.run_concurrent();
        let b = over.run_concurrent();
        assert_eq!(a.final_features, b.final_features);
        assert_eq!(a.gnn_outputs, b.gnn_outputs);
    }

    #[test]
    fn pipeline_plans_every_window_once() {
        let p = pipeline();
        assert_eq!(p.plans().len(), 2, "6 snapshots / K=3");
        assert_eq!(p.plan_cache_delta(), CacheStats::default());
    }

    #[test]
    fn shared_plan_cache_hits_across_pipelines() {
        let cache = Arc::new(PlanCache::new());
        let mk = |model| {
            TagnnPipeline::builder()
                .dataset(DatasetPreset::Gdelt)
                .model(model)
                .snapshots(6)
                .window(3)
                .hidden(8)
                .plan_cache(Arc::clone(&cache))
                .build()
        };
        let a = mk(ModelKind::TGcn);
        assert_eq!(a.plan_cache_delta().hits, 0);
        assert_eq!(a.plan_cache_delta().misses, 2);
        // Same dataset/scale/snapshots/seed ⇒ identical graph content, so
        // a different model must find every plan already cached.
        let b = mk(ModelKind::CdGcn);
        assert_eq!(b.plan_cache_delta().misses, 0);
        assert_eq!(b.plan_cache_delta().hits, 2);
        assert!(Arc::ptr_eq(&a.plans()[0], &b.plans()[0]));

        let report = b.simulate(&AcceleratorConfig::tagnn_default());
        assert_eq!(report.plan.cache_hits, 2);
        assert_eq!(report.plan.cache_misses, 0);
    }
}
