#![warn(missing_docs)]

//! # TaGNN — topology-aware dynamic graph neural network acceleration
//!
//! A full software reproduction of *"TaGNN: An Efficient Topology-aware
//! Accelerator for High-performance Dynamic Graph Neural Network"*
//! (SC '25): the topology-aware concurrent execution model, the O-CSR
//! storage format, the similarity-aware cell-skipping strategy, a
//! cycle-approximate simulator of the accelerator, and cost models of
//! every baseline the paper compares against.
//!
//! ## Quickstart
//!
//! ```
//! use tagnn::prelude::*;
//!
//! // A scaled-down synthetic stand-in for the paper's Gdelt dataset.
//! let pipeline = TagnnPipeline::builder()
//!     .dataset(DatasetPreset::Gdelt)
//!     .model(ModelKind::TGcn)
//!     .snapshots(6)
//!     .window(3)
//!     .hidden(16)
//!     .build();
//!
//! // Topology-aware concurrent inference with cell skipping.
//! let output = pipeline.run_concurrent();
//! assert_eq!(output.final_features.len(), 6);
//!
//! // Simulate the run on the Table-4 accelerator configuration.
//! let report = pipeline.simulate(&AcceleratorConfig::tagnn_default());
//! assert!(report.time_ms > 0.0);
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation; the `experiments` binary in `tagnn-bench` prints
//! them.

pub mod experiments;
pub mod pipeline;
pub mod report;

pub use pipeline::{PipelineBuilder, TagnnPipeline};

/// Structured observability (re-exported `tagnn-obs`): attach a
/// [`obs::Recorder`] via [`PipelineBuilder::recorder`] or
/// [`experiments::ExperimentContext::with_recorder`] to collect phase
/// spans and work counters, then export them with
/// [`obs::Trace::to_json`].
pub use tagnn_obs as obs;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::pipeline::{PipelineBuilder, TagnnPipeline};
    pub use tagnn_graph::{DatasetPreset, DynamicGraph, GeneratorConfig, OCsr, Snapshot};
    pub use tagnn_models::{
        CellMode, ConcurrentEngine, DgnnModel, InferenceOutput, ModelKind, ReferenceEngine,
        ReuseMode, SkipConfig,
    };
    pub use tagnn_obs::Recorder;
    pub use tagnn_sim::{AcceleratorConfig, SimReport, TagnnSimulator, Workload};
}
