//! Vendored stand-in for `proptest` (the build container has no
//! crates.io route). Implements the subset this repo's property tests
//! use: the `proptest!` macro (with `#![proptest_config]`), range /
//! tuple / `collection::vec` / `bool::ANY` strategies, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`, and `prop_assert*`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! its seed; rerunning reproduces it deterministically) and a smaller
//! default case count tuned for the 1-core CI host.

use rand::Rng as _;
use rand::SeedableRng as _;

/// Deterministic per-test random source.
pub struct TestRng(rand_chacha::ChaCha8Rng);

impl TestRng {
    /// Derives a seed from the test's identity and case index, so every
    /// run of the suite explores the same cases (failures reproduce).
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Upstream-compatible per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates values of `Self::Value`. Object-safe core plus sized
/// combinators, mirroring the `Strategy` name tests import.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! `proptest::collection::vec(element, size)`.
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Accepted size specifications: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! `proptest::bool::ANY`.
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct Any;

    /// Fair coin strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The `proptest! { ... }` block: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    // -- internal: no functions left --
    (@cfg ($cfg:expr)) => {};
    // -- internal: one function, then recurse --
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    // -- entry with a block-level config attribute --
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    // -- entry without config --
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_sum_strategy() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            xs in crate::collection::vec(0u64..50, 1..10),
            flag in crate::bool::ANY,
            (a, b) in pair_sum_strategy().prop_map(|(a, b)| (a.min(b), a.max(b))),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 50));
            prop_assert!([true, false].contains(&flag));
            prop_assert!(a <= b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_flat_map(
            v in prop_oneof![Just(1u8), Just(2u8)],
            xs in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n)),
        ) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!((1..4).contains(&xs.len()));
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let a: Vec<u64> = (0..5)
            .map(|case| {
                let mut rng = crate::TestRng::for_case("demo", case);
                Strategy::gen_value(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| {
                let mut rng = crate::TestRng::for_case("demo", case);
                Strategy::gen_value(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
