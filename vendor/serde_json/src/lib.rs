//! Vendored stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Content`] model as JSON text.
//!
//! Scope matches what the repo uses: `to_string`, `from_str`,
//! `to_string_pretty`, and a `Value` alias with `v["key"]` indexing and
//! `as_f64`-style accessors (provided on `Content` itself).

use serde::{de::DeserializeOwned, Content, Serialize};

/// JSON values; `Content` already carries the accessor/indexing surface.
pub type Value = Content;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes any `Serialize` value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content_pretty(&value.to_content(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any `DeserializeOwned` value.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::from_content(&content).map_err(|e| Error(e.0))
}

/// Converts a `Serialize` value to a [`Value`] without text round-trip.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literal; serde_json emits null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats readable and round-trippable.
        out.push_str(&format!("{:.1}", x));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(x) => out.push_str(&x.to_string()),
        Content::U64(x) => out.push_str(&x.to_string()),
        Content::F64(x) => write_f64(*x, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_content_pretty(c: &Content, out: &mut String, level: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_content_pretty(item, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_content_pretty(v, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_content(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for our own
                            // output (we only escape control chars), but
                            // handle lone BMP codepoints.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"id":"table4","metrics":{"x":1.5,"n":3},"flag":true,"opt":null}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["id"], "table4");
        assert_eq!(v["metrics"]["x"].as_f64(), Some(1.5));
        assert_eq!(v["metrics"]["n"].as_u64(), Some(3));
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn negative_and_float_numbers() {
        let v: Value = from_str("[-3, 2.5e2, -0.125]").unwrap();
        assert_eq!(v[0].as_i64(), Some(-3));
        assert_eq!(v[1].as_f64(), Some(250.0));
        assert_eq!(v[2].as_f64(), Some(-0.125));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\none\t\"quoted\" \\ back".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(original, back);
    }
}
