//! Vendored stand-in for `rayon` (no crates.io route in the build
//! container): the `par_*` entry points return ordinary sequential
//! `std` iterators, so every downstream adapter (`map`, `zip`,
//! `enumerate`, `for_each`, `sum`, `collect`, ...) works unchanged.
//!
//! Semantics note: results are identical to rayon's for the pure
//! element-wise usage in this repo (independent writes per element /
//! chunk); only the parallel speedup is absent. `current_num_threads`
//! honestly reports 1.

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSliceExt};
}

/// `into_par_iter()` for any owned iterable (vecs, ranges, ...).
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter` / `par_iter_mut` / `par_chunks_exact_mut` on slices
/// (and, via deref, `Vec`).
pub trait ParallelSliceExt<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T> {
        self.chunks_exact_mut(chunk_size)
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Error from [`ThreadPoolBuilder::build_global`]; never produced by
/// the sequential fallback but kept for signature parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(pub &'static str);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Accepts the configuration calls — execution is sequential in this
/// vendored build, so the calling thread is the pool's only worker.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _threads: Option<usize>,
    start_handler: Option<Box<dyn Fn(usize) + Send + Sync>>,
}

impl std::fmt::Debug for ThreadPoolBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPoolBuilder")
            .field("_threads", &self._threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = Some(n);
        self
    }

    /// Real rayon runs this on each worker thread as it spawns; the
    /// sequential shim has exactly one worker — the calling thread — so
    /// `build_global` invokes the handler once with index 0 (which is
    /// how `TAGNN_PIN_THREADS` core pinning still takes effect here).
    pub fn start_handler<H>(mut self, handler: H) -> Self
    where
        H: Fn(usize) + Send + Sync + 'static,
    {
        self.start_handler = Some(Box::new(handler));
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if let Some(handler) = &self.start_handler {
            handler(0);
        }
        Ok(())
    }
}

/// The sequential fallback always runs on the calling thread.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_matches_sequential_results() {
        let v = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![0u32; 6];
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(w, vec![0, 1, 2, 3, 4, 5]);

        let mut m = vec![0f32; 6];
        m.par_chunks_exact_mut(3)
            .enumerate()
            .for_each(|(row, chunk)| chunk.iter_mut().for_each(|c| *c = row as f32));
        assert_eq!(m, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);

        let total: u64 = (0u64..10).into_par_iter().sum();
        assert_eq!(total, 45);
    }
}
