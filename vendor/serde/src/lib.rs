//! Vendored stand-in for `serde`, built around a JSON-shaped content
//! model instead of serde's visitor architecture.
//!
//! The build container has no route to a crates.io mirror, so the
//! workspace vendors the external crates it uses. This crate keeps the
//! public *names* the codebase imports (`serde::Serialize`,
//! `serde::Deserialize`, `serde::de::DeserializeOwned`,
//! `serde::Serializer`) but implements them over [`Content`], a small
//! owned JSON value. `serde_json` (also vendored) renders/parses
//! `Content` to text.
//!
//! Supported data shapes mirror what the repo derives: named-field
//! structs, externally-tagged enums with unit/struct variants,
//! primitives, `String`, `Vec`, `Option`, tuples up to 3, and maps with
//! `String` keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned JSON-shaped value: the interchange format between derived
/// impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (JSON objects preserve field order).
    Map(Vec<(String, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// Map lookup by key (None for non-maps and missing keys).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::I64(x) => Some(*x as f64),
            Content::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(x) => Some(*x),
            Content::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(x) => Some(*x),
            Content::U64(x) if *x <= i64::MAX as u64 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// `value["key"]` indexing, returning `Null` for misses like serde_json.
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

/// Deserialization error: a message plus a breadcrumb of what was found.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` for `{ty}`"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum `{ty}`"))
    }

    pub fn invalid_type(expected: &str, found: &Content) -> Self {
        DeError(format!(
            "invalid type: expected {expected}, found {}",
            found.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts a value to [`Content`]. The derive macro targets this trait.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuilds a value from [`Content`]. The derive macro targets this trait.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

pub mod de {
    //! Mirror of `serde::de` for the `DeserializeOwned` bound.
    pub use super::DeError as Error;

    /// All our `Deserialize` impls produce owned values, so this is a
    /// blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Minimal `Serializer` surface for `#[serde(serialize_with = "...")]`
/// helper functions (`fn f<S: serde::Serializer>(&T, S) -> Result<S::Ok, S::Error>`).
pub trait Serializer {
    type Ok;
    type Error;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
}

/// The serializer the derive macro hands to `serialize_with` functions.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = std::convert::Infallible;
    fn serialize_str(self, v: &str) -> Result<Content, Self::Error> {
        Ok(Content::Str(v.to_string()))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, Self::Error> {
        Ok(Content::F64(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Content, Self::Error> {
        Ok(Content::U64(v))
    }
    fn serialize_bool(self, v: bool) -> Result<Content, Self::Error> {
        Ok(Content::Bool(v))
    }
}

/// Derive-macro helper: extract and deserialize struct field `name`.
pub fn field<T: Deserialize>(c: &Content, name: &str) -> Result<T, DeError> {
    match c.get(name) {
        Some(v) => T::from_content(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => Err(DeError::missing_field("struct", name)),
    }
}

/// Derive-macro helper for `#[serde(default)]` fields.
pub fn field_or_default<T: Deserialize + Default>(c: &Content, name: &str) -> Result<T, DeError> {
    match c.get(name) {
        Some(v) => T::from_content(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw = c.as_u64()
                    .ok_or_else(|| DeError::invalid_type(stringify!($t), c))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let raw = c.as_i64()
                    .ok_or_else(|| DeError::invalid_type(stringify!($t), c))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        "{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            // JSON has no NaN/Infinity literal; we serialise them as null.
            Content::Null => Ok(f32::NAN),
            _ => c
                .as_f64()
                .map(|x| x as f32)
                .ok_or_else(|| DeError::invalid_type("f32", c)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(f64::NAN),
            _ => c.as_f64().ok_or_else(|| DeError::invalid_type("f64", c)),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::invalid_type("bool", c))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::invalid_type("string", c))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::invalid_type("char", c))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_array()
            .ok_or_else(|| DeError::invalid_type("array", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_array()
            .ok_or_else(|| DeError::invalid_type("pair", c))?;
        if seq.len() != 2 {
            return Err(DeError::custom(format!(
                "expected pair, got {} items",
                seq.len()
            )));
        }
        Ok((A::from_content(&seq[0])?, B::from_content(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_array()
            .ok_or_else(|| DeError::invalid_type("triple", c))?;
        if seq.len() != 3 {
            return Err(DeError::custom(format!(
                "expected triple, got {} items",
                seq.len()
            )));
        }
        Ok((
            A::from_content(&seq[0])?,
            B::from_content(&seq[1])?,
            C::from_content(&seq[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::invalid_type("object", c)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output (HashMap iteration order is random).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::invalid_type("object", c)),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
