//! Vendored stand-in for `criterion` (no crates.io route in the build
//! container). Implements the subset the repo's benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's statistics engine.
//!
//! `cargo bench -- --test` (what CI runs) executes each benchmark body
//! once for correctness without timing loops.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Label for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name: `&str` / `String` / `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result_line: &'a mut Option<String>,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            *self.result_line = Some("test-mode: ran once".to_string());
            return;
        }
        // Warm-up.
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        *self.result_line = Some(format!(
            "median {median:?}  mean {mean:?}  ({} samples)",
            times.len()
        ));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 1000);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut line = None;
        let mut bencher = Bencher {
            // Keep wall-clock reasonable: criterion amortises over many
            // iterations; we cap the direct sample count instead.
            samples: self.samples.min(20),
            test_mode: self.test_mode,
            result_line: &mut line,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {}",
            self.name,
            id,
            line.unwrap_or_else(|| "no measurement (iter not called)".to_string())
        );
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into_id(), f);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a correctness pass only.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(4);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
