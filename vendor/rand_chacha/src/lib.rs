//! Vendored stand-in for `rand_chacha`: a real (reduced-round) ChaCha
//! block generator behind the `ChaCha8Rng` name. Deterministic per seed;
//! not bit-compatible with upstream (the repo pins no rand-derived
//! literals, only self-consistency across runs).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8-style deterministic generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.buffer[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the u64 seed into a 256-bit key with SplitMix64.
        let mut z = seed;
        let mut next = || {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^ (x >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0 (words 12/13), nonce = 0 (words 14/15)
        let mut rng = Self {
            state,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        let mut c = ChaCha8Rng::seed_from_u64(100);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }
}
