//! Vendored stand-in for `rand` (the build container has no crates.io
//! route). Keeps the trait names and the `gen_range`/`gen_bool` surface
//! the repo uses; the underlying streams are deterministic but NOT
//! bit-compatible with upstream rand — nothing in the repo pins
//! rand-derived literals, only self-consistency.

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (`G::seed_from_u64(seed)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`]: `a..b` and `a..=b` over the
/// numeric types the repo draws.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end as f64 {
                    <$t>::from_bits((self.end as $t).to_bits() - 1) // just below end
                } else {
                    v as $t
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Namespace parity with upstream rand.
    pub use super::SmallRng;
}

/// A small fast deterministic generator (SplitMix64-seeded xorshift*).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — fine statistical quality for tests/workload gen.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 scramble so small seeds diverge immediately.
        let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        Self {
            state: z | 1, // xorshift state must be nonzero
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(0u32..17);
            assert!(x < 17);
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
