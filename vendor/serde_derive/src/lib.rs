//! Vendored stand-in for `serde_derive`, written against the vendored
//! `serde` crate's content model (see `vendor/serde`).
//!
//! The container this repo builds in has no route to a crates.io mirror,
//! so the workspace vendors the handful of external crates it leans on.
//! This derive supports exactly the shapes the codebase uses:
//!
//! - named-field structs (no generics, no tuple/unit structs)
//! - enums with unit and struct variants (externally tagged, like serde)
//! - `#[serde(default)]` on fields (missing field -> `Default::default()`)
//! - `#[serde(serialize_with = "path")]` on fields
//!
//! Anything outside that surface panics at derive time with a clear
//! message rather than silently mis-serialising.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    serialize_with: Option<String>,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    /// Single unnamed field, e.g. `Window(WindowError)`.
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Parses a `#[serde(...)]` attribute body for the knobs we support.
/// `tokens` is the content inside the outer bracket group, e.g.
/// `serde (default)` or `serde (serialize_with = "f")`.
fn parse_serde_attr(tokens: &[TokenTree], field: &mut Field) {
    let mut it = tokens.iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // some other attribute (doc, derive, default, ...)
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                if key == "default" {
                    field.default = true;
                    i += 1;
                } else if key == "serialize_with" {
                    // serialize_with = "path"
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(i + 1), inner.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let s = lit.to_string();
                            field.serialize_with = Some(s.trim_matches('"').to_string());
                            i += 3;
                            continue;
                        }
                    }
                    panic!("serde_derive (vendored): malformed serialize_with");
                } else {
                    panic!(
                        "serde_derive (vendored): unsupported serde attribute `{key}` \
                         — only `default` and `serialize_with` are implemented"
                    );
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive (vendored): unexpected token {other} in #[serde(..)]"),
        }
    }
}

/// Skips attributes at `i`, folding any `#[serde(..)]` knobs into `field`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, field: &mut Field) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                parse_serde_attr(&body, field);
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips a type expression: everything until a comma at angle-bracket
/// depth zero (groups are single token trees, so only `<`/`>` need
/// balancing).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` named fields from the inside of a brace group.
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut field = Field {
            name: String::new(),
            default: false,
            serialize_with: None,
        };
        i = skip_attrs(&tokens, i, &mut field);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => field.name = id.to_string(),
            other => panic!("serde_derive (vendored): expected field name, got {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive (vendored): expected `:` after field `{}`, got {other} \
                 — tuple structs are not supported",
                field.name
            ),
        }
        i = skip_type(&tokens, i);
        // now at a comma or end
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(field);
    }
    fields
}

/// Parses enum variants from the inside of the enum's brace group.
fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut scratch = Field {
            name: String::new(),
            default: false,
            serialize_with: None,
        };
        i = skip_attrs(&tokens, i, &mut scratch);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive (vendored): expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Only single-field (newtype) tuple variants are
                // supported; a multi-field tuple type would contain a
                // top-level comma.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let end = skip_type(&inner, 0);
                if end != inner.len() {
                    panic!(
                        "serde_derive (vendored): multi-field tuple variant `{name}` \
                         unsupported — use a struct variant"
                    );
                }
                i += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        // skip an optional discriminant `= expr`
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut scratch = Field {
        name: String::new(),
        default: false,
        serialize_with: None,
    };
    let mut i = skip_attrs(&tokens, 0, &mut scratch);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive (vendored): expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive (vendored): expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` unsupported — \
                 hand-implement Serialize/Deserialize for it"
            );
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde_derive (vendored): `{name}` has no brace body — \
             unit/tuple structs unsupported"
        ),
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive (vendored): cannot derive for `{other}`"),
    }
}

fn gen_struct_fields_ser(fields: &[Field], accessor: &str, out: &mut String) {
    for f in fields {
        let n = &f.name;
        match &f.serialize_with {
            Some(path) => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), match {path}(&{accessor}{n}, \
                 ::serde::ContentSerializer) {{ Ok(c) => c, Err(e) => match e {{}} }}));\n"
            )),
            None => out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), \
                 ::serde::Serialize::to_content(&{accessor}{n})));\n"
            )),
        }
    }
}

fn gen_struct_fields_de(fields: &[Field], out: &mut String) {
    for f in fields {
        let n = &f.name;
        if f.default {
            out.push_str(&format!("{n}: ::serde::field_or_default(__c, \"{n}\")?,\n"));
        } else {
            out.push_str(&format!("{n}: ::serde::field(__c, \"{n}\")?,\n"));
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let mut out = String::new();
    match parsed {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n"
            ));
            gen_struct_fields_ser(&fields, "self.", &mut out);
            out.push_str("::serde::Content::Map(__m)\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => out.push_str(&format!(
                        "{name}::{vn}(__inner) => ::serde::Content::Map(vec![\
                         (\"{vn}\".to_string(), ::serde::Serialize::to_content(__inner))]),\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n",
                            pat.join(", ")
                        ));
                        gen_struct_fields_ser(fields, "*", &mut out);
                        out.push_str(&format!(
                            "::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Map(__m))])\n}}\n"
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse()
        .expect("serde_derive (vendored): generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let mut out = String::new();
    match parsed {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) \
                 -> Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{\n"
            ));
            gen_struct_fields_de(&fields, &mut out);
            out.push_str("})\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(__c: &::serde::Content) \
                 -> Result<Self, ::serde::DeError> {{\n\
                 match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n"
            ));
            for v in &variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            out.push_str(&format!(
                "__other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __c) = &__entries[0];\n\
                 match __k.as_str() {{\n"
            ));
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        // tolerate {"Variant": null} like serde does
                        out.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Newtype => {
                        out.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(__c)?)),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        out.push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n"));
                        gen_struct_fields_de(fields, &mut out);
                        out.push_str("}),\n");
                    }
                }
            }
            out.push_str(&format!(
                "__other => Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::DeError::invalid_type(\"{name}\", __other)),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    out.parse()
        .expect("serde_derive (vendored): generated Deserialize impl parses")
}
